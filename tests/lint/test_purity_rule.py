"""Fixture suite for R7 (bound purity).

R7 is a whole-program rule: the admissible-bound roots and their
transitive static call graph are checked across module boundaries,
so most fixtures here feed the engine several units at once.  The
no-false-positive half runs the rule over the entire real tree with
the shipped contract (the actual bound closure is ~60 functions).
"""

import textwrap
from pathlib import Path

from repro.lint import Contracts, LintEngine, ModuleUnit
from repro.lint.rules_flow import BoundPurityRule

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"

CONTRACTS = Contracts(
    bound_functions={"fix.bounds": frozenset({"root"})},
)


def run_lint(*sources, contracts=CONTRACTS):
    """Lint (module, source) pairs together as one program."""
    units = [
        ModuleUnit.from_source(module, textwrap.dedent(source))
        for module, source in sources
    ]
    engine = LintEngine(contracts, rules=[BoundPurityRule()])
    return engine.lint_units(units)


def only_finding(result):
    assert len(result.findings) == 1, [
        f.render() for f in result.findings
    ]
    return result.findings[0]


class TestPositive:
    def test_clock_call_in_root_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            import time

            def root(cfg):
                return time.time()
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 4
        assert "time.time" in finding.message

    def test_rng_in_transitive_helper_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            import random

            def _jitter():
                return random.random()

            def root(cfg):
                return _jitter()
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 4
        assert "fix.bounds:root" in finding.message

    def test_impurity_across_module_boundary_flags(self):
        result = run_lint(
            (
                "fix.bounds",
                """\
                from fix.helpers import floor_estimate

                def root(cfg):
                    return floor_estimate(cfg)
                """,
            ),
            (
                "fix.helpers",
                """\
                import time

                def floor_estimate(cfg):
                    return time.perf_counter()
                """,
            ),
        )
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 4
        assert finding.path.endswith("<fixture>")
        assert "fix.helpers:floor_estimate" in finding.message
        assert "bound closure of 'fix.bounds:root'" in finding.message

    def test_parameter_attribute_store_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            def root(cfg):
                cfg.cached = 1
                return 0
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 2
        assert "stores into 'cfg'" in finding.message

    def test_mutator_method_on_parameter_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            def root(cfg, seen):
                seen.append(cfg)
                return 0
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 2
        assert ".append()" in finding.message

    def test_mutator_through_alias_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            def root(cfg):
                handle = cfg.history
                handle.clear()
                return 0
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 3

    def test_global_statement_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            _COUNT = 0

            def root(cfg):
                global _COUNT
                _COUNT += 1
                return _COUNT
            """,
        ))
        findings = [f for f in result.findings if f.rule == "R7"]
        assert findings and findings[0].line == 4
        assert "global" in findings[0].message

    def test_module_global_subscript_store_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            _MEMO = {}

            def root(cfg):
                _MEMO[cfg] = 1
                return 1
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 4

    def test_unvetted_external_call_flags(self):
        result = run_lint((
            "fix.bounds",
            """\
            from mystery import conjure

            def root(cfg):
                return conjure(cfg)
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7" and finding.line == 4
        assert "allowlist" in finding.message

    def test_missing_bound_function_warns(self):
        result = run_lint((
            "fix.bounds",
            """\
            def unrelated():
                return 0
            """,
        ))
        finding = only_finding(result)
        assert finding.rule == "R7"
        assert finding.severity == "warning"
        assert "not defined" in finding.message


class TestPureClosuresStaySilent:
    def test_math_and_builtins_are_allowed(self):
        result = run_lint((
            "fix.bounds",
            """\
            import math

            def root(cfg):
                spans = [math.ceil(x / 2) for x in cfg.sizes]
                return max(min(spans), len(spans))
            """,
        ))
        assert result.findings == []

    def test_local_mutation_is_allowed(self):
        result = run_lint((
            "fix.bounds",
            """\
            def root(cfg):
                acc = []
                acc.append(1)
                best = {}
                best["k"] = 2
                return len(acc) + best["k"]
            """,
        ))
        assert result.findings == []

    def test_constructed_object_may_init_itself(self):
        result = run_lint((
            "fix.bounds",
            """\
            class Acc:
                def __init__(self, n):
                    self.n = n

            def root(cfg):
                return Acc(cfg.n).n
            """,
        ))
        assert result.findings == []

    def test_nonlocal_inside_closure_is_allowed(self):
        result = run_lint((
            "fix.bounds",
            """\
            def root(cfg):
                best = 0

                def consider(x):
                    nonlocal best
                    best = max(best, x)

                for x in cfg.sizes:
                    consider(x)
                return best
            """,
        ))
        assert result.findings == []

    def test_unlinted_repro_callee_degrades_silently(self):
        # The callee resolves into repro.* but that module is not part
        # of this run (single-file lint): no finding, the closure walk
        # just stops at the boundary instead of guessing.
        result = run_lint((
            "fix.bounds",
            """\
            from repro.elsewhere import helper

            def root(cfg):
                return helper(cfg)
            """,
        ))
        assert result.findings == []


class TestSuppressionReasons:
    SRC = """\
        import time

        def root(cfg):
            return time.time()  {marker}
    """

    def test_reasonless_ignore_does_not_suppress_r7(self):
        result = run_lint((
            "fix.bounds",
            self.SRC.format(marker="# repro-lint: ignore[R7]"),
        ))
        assert not result.ok

    def test_reasoned_ignore_suppresses_r7(self):
        result = run_lint((
            "fix.bounds",
            self.SRC.format(
                marker="# repro-lint: ignore[R7] -- fixture clock"
            ),
        ))
        assert result.ok and len(result.suppressed) == 1


class TestNoFalsePositivesOnRealTree:
    def test_real_bound_closure_is_pure(self):
        paths = sorted(SRC_REPRO.rglob("*.py"))
        units = [ModuleUnit.from_path(p) for p in paths]
        contracts = Contracts.discover(SRC_REPRO.parent)
        engine = LintEngine(contracts, rules=[BoundPurityRule()])
        result = engine.lint_units(units)
        assert result.unsuppressed == [], [
            f.render() for f in result.unsuppressed
        ]
