"""CLI, reporter, and real-tree tests for ``repro.lint``.

Covers the JSON reporter schema, the argparse front end's exit codes,
and — most importantly — a no-false-positive pass over known-clean
production modules with the *discovered* contracts, so rule tightening
that would start flagging the real tree fails here first.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Contracts,
    LintEngine,
    ModuleUnit,
    default_rules,
    lint,
    main,
    render_json,
)
from repro.lint.report import JSON_SCHEMA_VERSION, summary

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


class TestJsonReporter:
    def lint_fixture(self):
        unit = ModuleUnit.from_source(
            "repro.core.tiling",
            textwrap.dedent(
                """\
                def ceil_div(a, b):
                    return a // b

                def reuse_passes(m, k, n):
                    return int(m)  # repro-lint: ignore[R1] -- fixture
                """
            ),
        )
        contracts = Contracts(
            ceil_quantized={
                "repro.core.tiling": frozenset({"ceil_div",
                                                "reuse_passes"}),
            },
        )
        return LintEngine(contracts).lint_units([unit])

    def test_schema(self):
        payload = json.loads(render_json(self.lint_fixture()))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["tool"] == "repro.lint"
        assert set(payload) == {
            "version", "tool", "summary", "findings", "rules",
        }
        assert set(payload["summary"]) == {
            "total", "unsuppressed", "suppressed", "errors",
            "warnings", "files_checked", "ok",
        }
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "severity", "path", "line", "col",
                "message", "suppressed",
            }
            assert isinstance(finding["line"], int)
            assert finding["severity"] in ("error", "warning")
        # v2: every registered rule reports counts and wall time.
        assert set(payload["rules"]) == {
            rule.id for rule in default_rules()
        }
        for entry in payload["rules"].values():
            assert set(entry) == {
                "findings", "unsuppressed", "wall_time_s",
            }
            assert entry["wall_time_s"] >= 0.0
        assert payload["rules"]["R1"]["findings"] == 2
        assert payload["rules"]["R1"]["unsuppressed"] == 1

    def test_summary_counts(self):
        result = self.lint_fixture()
        info = summary(result)
        assert info["total"] == 2
        assert info["unsuppressed"] == 1
        assert info["suppressed"] == 1
        assert info["ok"] is False

    def test_json_includes_suppressed_marked(self):
        payload = json.loads(render_json(self.lint_fixture()))
        flags = sorted(f["suppressed"] for f in payload["findings"])
        assert flags == [False, True]


class TestNoFalsePositives:
    """The rules must pass the real modules they were written against."""

    @pytest.mark.parametrize("relpath", [
        "core/perf.py",
        "core/footprint.py",
    ])
    def test_known_clean_module(self, relpath):
        result = lint([SRC_REPRO / relpath],
                      contracts=Contracts.discover(SRC_REPRO.parent))
        assert result.unsuppressed == [], [
            f.render() for f in result.unsuppressed
        ]

    def test_whole_tree_is_clean(self):
        # Satellite self-check: the shipped tree carries zero
        # unsuppressed findings, same as the CI gate.
        result = lint([SRC_REPRO])
        assert result.files_checked > 50
        assert result.unsuppressed == [], [
            f.render() for f in result.unsuppressed
        ]


class TestCliFrontend:
    def test_exit_zero_on_clean_tree(self, capsys):
        status = main([str(SRC_REPRO)])
        out = capsys.readouterr().out
        assert status == 0
        assert "clean" in out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core"
        bad.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (bad / "__init__.py").write_text("")
        (bad / "tiling.py").write_text(
            "def ceil_div(a, b):\n    return a // b\n"
        )
        status = main([str(bad / "tiling.py")])
        out = capsys.readouterr().out
        assert status == 1
        assert "R1" in out

    def test_json_format(self, capsys):
        status = main([str(SRC_REPRO / "core" / "tiling.py"),
                       "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["summary"]["ok"] is True

    def test_unknown_rule_id_is_usage_error(self, capsys):
        status = main([str(SRC_REPRO), "--rules", "R9"])
        err = capsys.readouterr().err
        assert status == 2
        assert "unknown rule" in err

    def test_rule_subset(self, capsys):
        status = main([str(SRC_REPRO / "core" / "cache.py"),
                       "--rules", "R3,R4"])
        assert status == 0

    def test_missing_path_is_usage_error(self, capsys):
        status = main(["/nonexistent/nowhere.py"])
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        status = main(["--list-rules"])
        out = capsys.readouterr().out
        assert status == 0
        for rule in default_rules():
            assert rule.id in out


class TestDumpContracts:
    def test_dump_is_valid_json_with_all_rule_sections(self, capsys):
        status = main(["--dump-contracts"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["version"] == 2
        for section in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
            assert section in payload, sorted(payload)

    def test_dump_is_byte_stable(self, capsys):
        main(["--dump-contracts"])
        first = capsys.readouterr().out
        main(["--dump-contracts"])
        second = capsys.readouterr().out
        assert first == second

    def test_checked_in_snapshot_is_current(self, capsys):
        # Mirrors the CI gate: docs/contracts.json must equal the live
        # tables.  Regenerate with
        #   PYTHONPATH=src python -m repro.lint --dump-contracts \
        #     > docs/contracts.json
        main(["--dump-contracts"])
        live = capsys.readouterr().out
        snapshot = (REPO_ROOT / "docs" / "contracts.json").read_text()
        assert live == snapshot


class TestTraceFlag:
    def test_trace_emits_lint_metrics(self, tmp_path, capsys):
        trace = tmp_path / "lint_trace.jsonl"
        status = main([str(SRC_REPRO / "core" / "tiling.py"),
                       "--trace", str(trace)])
        capsys.readouterr()
        assert status == 0
        assert trace.exists()
        data = {}
        for line in trace.read_text().splitlines():
            record = json.loads(line)
            if record.get("type") == "metrics":
                data.update(record["data"])
        names = {n for n in data if n.startswith("lint.")}
        assert "lint.files_checked" in names, sorted(names)
        assert "lint.findings" in names
        assert any(n.startswith("lint.rule.R5.") for n in names), (
            sorted(names)
        )
        assert data["lint.files_checked"]["value"] == 1
        assert data["lint.rule.R5.wall_time_s"]["kind"] == "gauge"


class TestModuleEntryPoint:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(SRC_REPRO),
             "--format", "json"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"),
                 "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["summary"]["unsuppressed"] == 0
