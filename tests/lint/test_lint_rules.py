"""Fixture-driven tests for the repro.lint rules (R1-R4).

Each fixture snippet claims to be one of the contract-constrained
modules and plants a violation; the test asserts the engine flags it
with the expected rule id and line number, and that the sanctioned
idioms stay clean.
"""

import textwrap

import pytest

from repro.lint import Contracts, LintEngine, ModuleUnit
from repro.lint.rules import (
    CeilQuantizationRule,
    ConfigImmutabilityRule,
    DeterminismRule,
    ShapePolymorphismRule,
    default_rules,
)


def run_lint(module, source, rules=None, contracts=None):
    unit = ModuleUnit.from_source(module, textwrap.dedent(source))
    engine = LintEngine(
        contracts if contracts is not None else Contracts(),
        rules=rules,
    )
    return engine.lint_units([unit])


CONTRACTS = Contracts(
    ceil_quantized={"repro.core.tiling": frozenset({"ceil_div"}),
                    "repro.core.perf": frozenset({"_compute_cycles"})},
    polymorphic={"repro.core.perf": frozenset({"_blend_passes"})},
    scalar_lut={"repro.core.tiling": frozenset({"choose_l2_tile"})},
    cache_key_classes={"repro.core.perf": frozenset({"PerfOptions"})},
)


class TestR1CeilQuantization:
    def test_floor_division_flagged_with_line(self):
        result = run_lint(
            "repro.core.tiling",
            """\
            def ceil_div(a, b):
                return a // b
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R1"
        assert finding.line == 2
        assert "floor division" in finding.message

    def test_ceil_idiom_allowed(self):
        result = run_lint(
            "repro.core.tiling",
            """\
            def ceil_div(a, b):
                return -(-a // b)
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        assert result.ok

    @pytest.mark.parametrize("expr,needle", [
        ("int(macs / eff)", "'int()'"),
        ("round(macs / eff)", "'round()'"),
        ("math.floor(macs / eff)", "'math.floor()'"),
        ("math.trunc(macs / eff)", "'math.trunc()'"),
    ])
    def test_truncating_calls_flagged(self, expr, needle):
        result = run_lint(
            "repro.core.perf",
            f"""\
            import math

            def _compute_cycles(macs, eff):
                return {expr}
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R1" and finding.line == 4
        assert needle in finding.message

    def test_unlisted_function_not_checked(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _compute_cycles(macs, eff):
                return macs / eff

            def helper(a, b):
                return a // b
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        assert result.ok

    def test_contract_drift_warns(self):
        result = run_lint(
            "repro.core.perf",
            "def unrelated():\n    return 1\n",
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.severity == "warning"
        assert "_compute_cycles" in finding.message


class TestR2ShapePolymorphism:
    def test_if_on_formula_value_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes):
                if fit < 1.0:
                    return l2_passes + 1.0
                return l2_passes
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R2" and finding.line == 2
        assert "'if' on formula value" in finding.message

    def test_builtin_min_on_formula_value_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes):
                return min(fit, l2_passes)
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.line == 2 and "'min()'" in finding.message

    def test_taint_propagates_through_assignment(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes):
                spilled = 1.0 - fit
                return max(spilled, 0.5)
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.line == 3 and "'max()'" in finding.message

    def test_any_array_dispatch_scalar_tail_allowed(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes):
                if _any_array(staged, fit, l2_passes):
                    return _np.where(staged, fit * 2.0, l2_passes)
                if not staged:
                    return l2_passes
                return min(fit, 1.0)
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        assert result.ok

    def test_scalar_flag_branching_allowed(self):
        # extra_pass_only is contract-pinned as a Python bool.
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes,
                              extra_pass_only=True):
                if extra_pass_only:
                    return fit * 2.0
                return fit * (l2_passes + 1.0)
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        assert result.ok

    def test_isinstance_guard_allowed(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes):
                if isinstance(fit, int) and isinstance(staged, bool):
                    if fit < 0:
                        raise ValueError("bad")
                return fit * l2_passes
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        assert result.ok

    def test_boolop_on_formula_values_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes):
                return staged and fit
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert "'and'/'or'" in finding.message

    def test_conditional_expression_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            def _blend_passes(staged, fit, l2_passes):
                return l2_passes if staged else fit
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert "conditional expression" in finding.message

    def test_uncovered_batch_import_flagged(self):
        result = run_lint(
            "repro.core.batch",
            """\
            from repro.core.perf import _blend_passes, _new_helper
            from repro.core.tiling import choose_l2_tile
            """,
            rules=[ShapePolymorphismRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.line == 1
        assert "_new_helper" in finding.message
        assert "contract" in finding.message


class TestR3Determinism:
    CONTRACTS = Contracts(
        fingerprinted_modules=frozenset({"repro.core.tiling"}),
    )

    def check(self, source, module="repro.core.tiling"):
        return run_lint(
            module, source, rules=[DeterminismRule()],
            contracts=self.CONTRACTS,
        )

    @pytest.mark.parametrize("line,source", [
        (1, "import time\n"),
        (1, "import random\n"),
        (1, "from random import shuffle\n"),
        (2, "import os\nVALUE = os.environ['HOME']\n"),
        (2, "import os\nVALUE = os.getenv('HOME')\n"),
        (2, "KEY = 'x'\nDIGEST = hash(KEY)\n"),
        (2, "items = set((1, 2))\nout = [x for x in items]\n"),
        (2, "items = {1, 2}\nout = list(items)\n"),
    ])
    def test_nondeterminism_flagged(self, line, source):
        result = self.check(source)
        assert not result.ok
        assert result.unsuppressed[0].rule == "R3"
        assert result.unsuppressed[0].line == line

    def test_sorted_set_iteration_allowed(self):
        result = self.check(
            """\
            def candidates(dim):
                sizes = set()
                size = 1
                while size < dim:
                    sizes.add(size)
                    size *= 2
                return tuple(sorted(sizes))
            """
        )
        assert result.ok

    def test_membership_test_allowed(self):
        result = self.check(
            "items = {1, 2}\nFLAG = 1 in items\n"
        )
        assert result.ok

    def test_unconstrained_module_ignored(self):
        result = self.check("import time\n", module="repro.cli")
        assert result.ok

    def test_fingerprint_coverage_missing_module_flagged(self):
        contracts = Contracts(
            required_fingerprint_modules=frozenset(
                {"repro.core.perf", "repro.core.batch"}
            ),
            cache_module="repro.core.cache",
        )
        result = run_lint(
            "repro.core.cache",
            """\
            _FINGERPRINT_MODULES = (
                "repro.core.perf",
            )
            """,
            rules=[DeterminismRule()],
            contracts=contracts,
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R3" and finding.line == 1
        assert "repro.core.batch" in finding.message

    def test_fingerprint_coverage_complete_passes(self):
        contracts = Contracts(
            required_fingerprint_modules=frozenset({"repro.core.perf"}),
        )
        result = run_lint(
            "repro.core.cache",
            '_FINGERPRINT_MODULES = ("repro.core.perf",)\n',
            rules=[DeterminismRule()],
            contracts=contracts,
        )
        assert result.ok

    def test_fingerprinted_tooling_module_flagged(self):
        contracts = Contracts(
            required_fingerprint_modules=frozenset({"repro.core.perf"}),
        )
        result = run_lint(
            "repro.core.cache",
            """\
            _FINGERPRINT_MODULES = (
                "repro.core.perf",
                "repro.obs.trace",
                "repro.lint",
            )
            """,
            rules=[DeterminismRule()],
            contracts=contracts,
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R3" and finding.line == 1
        assert "repro.lint" in finding.message
        assert "repro.obs.trace" in finding.message
        assert "spuriously invalidate" in finding.message

    def test_fingerprinted_serve_module_flagged(self):
        """The serving layer is pure transport: fingerprinting it would
        invalidate the disk cache on every scheduler edit, so the
        default contract must keep ``repro.serve`` excluded."""
        from repro.lint.contracts import FINGERPRINT_EXCLUDED_PREFIXES

        assert "repro.serve" in FINGERPRINT_EXCLUDED_PREFIXES
        result = run_lint(
            "repro.core.cache",
            """\
            _FINGERPRINT_MODULES = (
                "repro.core.perf",
                "repro.serve.scheduler",
            )
            """,
            rules=[DeterminismRule()],
            contracts=Contracts(
                required_fingerprint_modules=frozenset({"repro.core.perf"}),
            ),
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R3" and finding.line == 1
        assert "repro.serve.scheduler" in finding.message

    def test_scaleout_tier_is_required_and_fingerprinted(self):
        """Regression: the scale-out tier must stay in the fingerprint
        set — cached ``scaleout-memo`` winners embed the fabric
        collective formulas and the partition/sharding model — while
        ``repro.serve`` stays excluded."""
        from repro.core.cache import _FINGERPRINT_MODULES
        from repro.lint.contracts import (
            FINGERPRINT_EXCLUDED_PREFIXES,
            REQUIRED_FINGERPRINT_MODULES,
        )

        for module in ("repro.core.scaleout", "repro.arch.fabric"):
            assert module in REQUIRED_FINGERPRINT_MODULES
            assert module in _FINGERPRINT_MODULES
        assert "repro.serve" in FINGERPRINT_EXCLUDED_PREFIXES
        assert not any(
            name.startswith("repro.serve") for name in _FINGERPRINT_MODULES
        )

    def test_fingerprint_missing_scaleout_tier_flagged(self):
        """Dropping the new modules from ``cache.py`` is an R3 finding."""
        result = run_lint(
            "repro.core.cache",
            """\
            _FINGERPRINT_MODULES = (
                "repro.core.perf",
            )
            """,
            rules=[DeterminismRule()],
            contracts=Contracts(
                required_fingerprint_modules=frozenset(
                    {"repro.core.perf", "repro.core.scaleout",
                     "repro.arch.fabric"}
                ),
            ),
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R3" and finding.line == 1
        assert "repro.core.scaleout" in finding.message
        assert "repro.arch.fabric" in finding.message


class TestR4ConfigImmutability:
    def test_unfrozen_cache_key_dataclass_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            from dataclasses import dataclass

            @dataclass
            class PerfOptions:
                flexible_mapping: bool = True
            """,
            rules=[ConfigImmutabilityRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R4" and finding.line == 4
        assert "frozen=True" in finding.message

    def test_mutable_field_type_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            from dataclasses import dataclass
            from typing import List

            @dataclass(frozen=True)
            class PerfOptions:
                knobs: List[int] = None
            """,
            rules=[ConfigImmutabilityRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert finding.line == 6 and "unhashable" in finding.message

    def test_mutable_default_factory_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class PerfOptions:
                knobs: tuple = field(default_factory=list)
            """,
            rules=[ConfigImmutabilityRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert "default_factory" in finding.message or "mutable" in \
            finding.message

    def test_frozen_with_tuple_fields_passes(self):
        result = run_lint(
            "repro.core.perf",
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PerfOptions:
                flexible_mapping: bool = True
                reserve: float = 0.125
            """,
            rules=[ConfigImmutabilityRule()],
            contracts=CONTRACTS,
        )
        assert result.ok

    def test_setattr_bypass_flagged_outside_post_init(self):
        result = run_lint(
            "repro.core.engine",
            """\
            def clobber(options):
                object.__setattr__(options, "flexible_mapping", False)
            """,
            rules=[ConfigImmutabilityRule()],
            contracts=Contracts(),
        )
        (finding,) = result.unsuppressed
        assert finding.rule == "R4" and finding.line == 2
        assert "replace" in finding.message

    def test_setattr_in_post_init_allowed(self):
        result = run_lint(
            "repro.core.engine",
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Thing:
                value: int

                def __post_init__(self):
                    object.__setattr__(self, "value", abs(self.value))
            """,
            rules=[ConfigImmutabilityRule()],
            contracts=Contracts(),
        )
        assert result.ok

    def test_eq_disabled_flagged(self):
        result = run_lint(
            "repro.core.perf",
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True, eq=False)
            class PerfOptions:
                flexible_mapping: bool = True
            """,
            rules=[ConfigImmutabilityRule()],
            contracts=CONTRACTS,
        )
        (finding,) = result.unsuppressed
        assert "eq" in finding.message


class TestSuppressions:
    def test_targeted_suppression(self):
        result = run_lint(
            "repro.core.tiling",
            """\
            def ceil_div(a, b):
                return a // b  # repro-lint: ignore[R1] -- fixture
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        assert result.ok
        assert len(result.suppressed) == 1
        assert result.suppressed[0].suppressed

    def test_bare_ignore_suppresses_all_rules(self):
        result = run_lint(
            "repro.core.tiling",
            """\
            def ceil_div(a, b):
                return a // b  # repro-lint: ignore
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        assert result.ok and len(result.suppressed) == 1

    def test_wrong_rule_id_does_not_suppress(self):
        result = run_lint(
            "repro.core.tiling",
            """\
            def ceil_div(a, b):
                return a // b  # repro-lint: ignore[R3]
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        assert not result.ok

    def test_suppression_is_line_scoped(self):
        result = run_lint(
            "repro.core.tiling",
            """\
            def ceil_div(a, b):
                # repro-lint: ignore[R1]
                return a // b
            """,
            rules=[CeilQuantizationRule()],
            contracts=CONTRACTS,
        )
        assert not result.ok  # marker is on line 2, finding on line 3


class TestEngine:
    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(ValueError):
            LintEngine(
                Contracts(),
                rules=[CeilQuantizationRule(), CeilQuantizationRule()],
            )

    def test_default_rules_cover_r1_to_r7(self):
        assert [r.id for r in default_rules()] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7",
        ]

    def test_findings_sorted_by_location(self):
        result = run_lint(
            "repro.core.tiling",
            """\
            def reuse_passes(m, k, n):
                x = m // 2
                y = k // 2
                return x + y
            """,
            rules=[CeilQuantizationRule()],
            contracts=Contracts(
                ceil_quantized={
                    "repro.core.tiling": frozenset({"reuse_passes"}),
                },
            ),
        )
        lines = [f.line for f in result.unsuppressed]
        assert lines == sorted(lines) and len(lines) == 2
