"""Fixture suite for R6 (concurrency discipline).

Positive fixtures assert rule id + line for every contract clause
(guarded fields, await-under-lock, blocking reachability, executor
escape hatches); no-false-positive tests lint the real serving/cache
modules with the shipped lock inventory.
"""

import textwrap
from pathlib import Path

from repro.lint import Contracts, LintEngine, ModuleUnit, lint
from repro.lint.rules_flow import ConcurrencyRule

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"

CONTRACTS = Contracts(
    lock_inventory={
        "fix.conc": {
            "locks": {
                "self._queue": "self._lock",
                "_totals": "_TOTALS_LOCK",
                "_flag": "_FLAG_LOCK",
            },
            "write_only": ("_flag",),
            "held_by": ("Box._drain",),
            "loop_confined": ("self._memo",),
            "executor_only": ("Box._score",),
        },
    },
    event_loop_modules=frozenset({"fix.conc"}),
)


def run_lint(source, module="fix.conc", contracts=CONTRACTS):
    unit = ModuleUnit.from_source(module, textwrap.dedent(source))
    engine = LintEngine(contracts, rules=[ConcurrencyRule()])
    return engine.lint_units([unit])


def only_finding(result):
    assert len(result.findings) == 1, [
        f.render() for f in result.findings
    ]
    return result.findings[0]


class TestGuardedFields:
    def test_unlocked_touch_flags(self):
        result = run_lint(
            """\
            class Box:
                def peek(self):
                    return len(self._queue)
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 3
        assert "self._lock" in finding.message

    def test_locked_touch_is_clean(self):
        result = run_lint(
            """\
            class Box:
                def peek(self):
                    with self._lock:
                        return len(self._queue)
            """
        )
        assert result.findings == []

    def test_held_by_helper_is_exempt(self):
        result = run_lint(
            """\
            class Box:
                def _drain(self):
                    return self._queue.pop()
            """
        )
        assert result.findings == []

    def test_init_is_exempt(self):
        result = run_lint(
            """\
            class Box:
                def __init__(self):
                    self._queue = []
            """
        )
        assert result.findings == []

    def test_module_global_write_without_lock_flags(self):
        result = run_lint(
            """\
            def bump(key):
                global _totals
                _totals = {}
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 3
        assert "_TOTALS_LOCK" in finding.message

    def test_module_global_mutation_under_lock_is_clean(self):
        result = run_lint(
            """\
            def bump(key):
                with _TOTALS_LOCK:
                    _totals[key] = _totals.get(key, 0) + 1
            """
        )
        assert result.findings == []

    def test_local_shadow_of_guarded_global_is_clean(self):
        result = run_lint(
            """\
            def summarize():
                _totals = {}
                return _totals
            """
        )
        assert result.findings == []

    def test_write_only_field_read_is_clean(self):
        result = run_lint(
            """\
            def get_flag():
                return _flag
            """
        )
        assert result.findings == []

    def test_write_only_field_write_still_needs_lock(self):
        result = run_lint(
            """\
            def set_flag(value):
                global _flag
                _flag = value
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 3


class TestAwaitUnderLock:
    def test_await_holding_thread_lock_flags(self):
        result = run_lint(
            """\
            class Box:
                async def fetch(self):
                    with self._lock:
                        return await self.remote()
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 4
        assert "awaits while holding" in finding.message

    def test_async_with_asyncio_lock_is_clean(self):
        result = run_lint(
            """\
            class Box:
                async def fetch(self):
                    async with self._alock:
                        return await self.remote()
            """
        )
        assert result.findings == []

    def test_await_after_release_is_clean(self):
        result = run_lint(
            """\
            class Box:
                async def fetch(self):
                    with self._lock:
                        snapshot = list(self._queue)
                    return await self.remote(snapshot)
            """
        )
        assert result.findings == []


class TestBlockingReachability:
    def test_direct_sleep_in_coroutine_flags(self):
        result = run_lint(
            """\
            import time

            async def handle(req):
                time.sleep(0.1)
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 4
        assert "time.sleep" in finding.message

    def test_transitive_blocking_via_helper_flags(self):
        result = run_lint(
            """\
            import subprocess

            def _compile(spec):
                return subprocess.run(spec)

            async def handle(req):
                return _compile(req)
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 4
        assert "subprocess.run" in finding.message
        assert "'handle'" in finding.message

    def test_open_in_coroutine_flags(self):
        result = run_lint(
            """\
            async def handle(path):
                with open(path) as fh:
                    return fh.read()
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 2

    def test_executor_only_helper_may_block(self):
        result = run_lint(
            """\
            import time

            class Box:
                def _score(self, xs):
                    time.sleep(0.1)
                    return xs

                async def handle(self, req):
                    return await self.loop.run_in_executor(
                        None, self._score, req
                    )
            """
        )
        assert result.findings == []

    def test_blocking_outside_event_loop_module_is_clean(self):
        result = run_lint(
            """\
            import time

            async def handle(req):
                time.sleep(0.1)
            """,
            module="fix.batchjob",
        )
        assert result.findings == []


class TestExecutorEscapeHatches:
    def test_executor_only_touching_loop_confined_flags(self):
        result = run_lint(
            """\
            class Box:
                def _score(self, xs):
                    return self._memo.get(xs)
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 3
        assert "loop-confined" in finding.message

    def test_coroutine_calling_executor_only_directly_flags(self):
        result = run_lint(
            """\
            class Box:
                async def handle(self, req):
                    return self._score(req)
            """
        )
        finding = only_finding(result)
        assert finding.rule == "R6" and finding.line == 3
        assert "run_in_executor" in finding.message


class TestSuppressionReasons:
    def test_reasonless_ignore_does_not_suppress_r6(self):
        result = run_lint(
            """\
            class Box:
                def peek(self):
                    return len(self._queue)  # repro-lint: ignore[R6]
            """
        )
        assert not result.ok

    def test_reasoned_ignore_suppresses_r6(self):
        result = run_lint(
            """\
            class Box:
                def peek(self):
                    return len(self._queue)  # repro-lint: ignore[R6] -- racy len is a hint only
            """
        )
        assert result.ok and len(result.suppressed) == 1


class TestNoFalsePositivesOnRealModules:
    def check_clean(self, relpath):
        result = lint(
            [SRC_REPRO / relpath],
            contracts=Contracts.discover(SRC_REPRO.parent),
            rules=[ConcurrencyRule()],
        )
        assert result.unsuppressed == [], [
            f.render() for f in result.unsuppressed
        ]

    def test_serve_scheduler_is_clean(self):
        self.check_clean("serve/scheduler.py")

    def test_serve_server_is_clean(self):
        self.check_clean("serve/server.py")

    def test_core_cache_is_clean(self):
        self.check_clean("core/cache.py")

    def test_obs_metrics_is_clean(self):
        self.check_clean("obs/metrics.py")
