"""Property-based tests (hypothesis) for the tile-level simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import edge
from repro.sim.engine import simulate
from repro.sim.schedule import TilePass

_EDGE = edge()

pass_strategy = st.builds(
    TilePass,
    index=st.just(0),
    read_bytes=st.floats(min_value=0, max_value=1e6),
    compute_cycles=st.floats(min_value=0, max_value=1e5),
    softmax_cycles=st.floats(min_value=0, max_value=1e4),
    write_bytes=st.floats(min_value=0, max_value=1e5),
)


def _reindex(passes):
    return [
        TilePass(index=i, read_bytes=p.read_bytes,
                 compute_cycles=p.compute_cycles,
                 softmax_cycles=p.softmax_cycles,
                 write_bytes=p.write_bytes)
        for i, p in enumerate(passes)
    ]


@settings(max_examples=60, deadline=None)
@given(passes=st.lists(pass_strategy, min_size=1, max_size=20))
def test_total_at_least_any_single_stream(passes):
    """The pipeline can hide streams behind each other, but never run
    faster than its compute total or its DRAM total alone."""
    passes = _reindex(passes)
    result = simulate(passes, _EDGE)
    compute_total = sum(p.compute_cycles + p.softmax_cycles for p in passes)
    dram_total = sum(p.read_bytes + p.write_bytes for p in passes) / \
        _EDGE.offchip_bytes_per_cycle
    assert result.total_cycles >= compute_total - 1e-6
    assert result.total_cycles >= dram_total - 1e-6


@settings(max_examples=60, deadline=None)
@given(passes=st.lists(pass_strategy, min_size=1, max_size=20))
def test_total_at_most_fully_serial(passes):
    """Overlap can only help: never slower than running every stream
    back to back."""
    passes = _reindex(passes)
    result = simulate(passes, _EDGE)
    serial = sum(
        p.compute_cycles + p.softmax_cycles
        + (p.read_bytes + p.write_bytes) / _EDGE.offchip_bytes_per_cycle
        for p in passes
    )
    assert result.total_cycles <= serial + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    passes=st.lists(pass_strategy, min_size=1, max_size=12),
    extra=pass_strategy,
)
def test_adding_a_pass_never_speeds_things_up(passes, extra):
    """Appending work can only add time — up to one allowance: the
    shorter schedule exposes its final writeback at the end, while the
    longer one may overlap that writeback with the appended pass."""
    passes = _reindex(passes)
    longer = _reindex(passes + [extra])
    writeback_allowance = passes[-1].write_bytes / \
        _EDGE.offchip_bytes_per_cycle
    assert simulate(longer, _EDGE).total_cycles >= \
        simulate(passes, _EDGE).total_cycles - writeback_allowance - 1e-6


@settings(max_examples=40, deadline=None)
@given(passes=st.lists(pass_strategy, min_size=1, max_size=12))
def test_timeline_execution_order_preserved(passes):
    passes = _reindex(passes)
    result = simulate(passes, _EDGE)
    ends = [t.exec_end for t in result.timeline]
    assert ends == sorted(ends)
    for entry in result.timeline:
        assert entry.fetch_start <= entry.fetch_end <= entry.exec_end


@settings(max_examples=40, deadline=None)
@given(passes=st.lists(pass_strategy, min_size=1, max_size=12))
def test_dram_byte_conservation(passes):
    passes = _reindex(passes)
    result = simulate(passes, _EDGE)
    expected = sum(p.read_bytes + p.write_bytes for p in passes)
    assert result.dram_bytes == pytest.approx(expected, rel=1e-12)
