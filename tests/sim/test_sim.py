"""Unit tests for the tile-level simulator."""

import pytest

from repro.arch.presets import edge
from repro.core.dataflow import Granularity, StagingPolicy, flat_r, flat_x
from repro.sim.engine import simulate
from repro.sim.schedule import TilePass, build_la_schedule
from repro.ops.attention import AttentionConfig


def small_cfg(batch=2, heads=2, seq=128, d_model=128):
    return AttentionConfig(
        "sim", batch=batch, heads=heads, d_model=d_model, seq_q=seq,
        seq_kv=seq, d_ff=4 * d_model,
    )


class TestScheduleBuilder:
    def test_pass_count(self, edge_accel):
        cfg = small_cfg()
        sched = build_la_schedule(cfg, flat_r(32), edge_accel)
        assert len(sched) == cfg.batch * cfg.heads * (cfg.seq_q // 32)

    def test_kv_fetched_once_per_group(self, edge_accel):
        cfg = small_cfg()
        sched = build_la_schedule(cfg, flat_r(32), edge_accel)
        row_passes = cfg.seq_q // 32
        e = edge_accel.bytes_per_element
        kv_bytes = 2 * cfg.seq_kv * cfg.d_head * e
        q_bytes = 32 * cfg.d_head * e
        # First pass of each group carries K and V; later passes only Q.
        for i, p in enumerate(sched):
            if i % row_passes == 0:
                assert p.read_bytes == pytest.approx(q_bytes + kv_bytes)
            else:
                assert p.read_bytes == pytest.approx(q_bytes)

    def test_total_reads_equal_cold_traffic(self, edge_accel):
        cfg = small_cfg()
        sched = build_la_schedule(cfg, flat_r(32), edge_accel)
        e = edge_accel.bytes_per_element
        total_reads = sum(p.read_bytes for p in sched)
        cold = (
            cfg.batch * cfg.heads
            * (cfg.seq_q + 2 * cfg.seq_kv) * cfg.d_head * e
        )
        assert total_reads == pytest.approx(cold)

    def test_requires_fused(self, edge_accel):
        from repro.core.dataflow import base

        with pytest.raises(ValueError):
            build_la_schedule(small_cfg(), base(), edge_accel)

    def test_requires_all_staging(self, edge_accel):
        df = flat_r(32, staging=StagingPolicy(rhs=False))
        with pytest.raises(ValueError):
            build_la_schedule(small_cfg(), df, edge_accel)

    def test_requires_fitting_footprint(self, edge_accel):
        big = small_cfg(seq=16384)  # R-gran K/V tiles exceed 512 KB
        with pytest.raises(ValueError):
            build_la_schedule(big, flat_r(32), edge_accel)

    def test_remainder_rows_handled(self, edge_accel):
        cfg = small_cfg(seq=100)
        sched = build_la_schedule(cfg, flat_r(32), edge_accel)
        assert len(sched) == cfg.batch * cfg.heads * 4  # 32+32+32+4


class TestEngine:
    def test_empty_schedule_rejected(self, edge_accel):
        with pytest.raises(ValueError):
            simulate([], edge_accel)

    def test_single_pass_time(self, edge_accel):
        p = TilePass(index=0, read_bytes=5000.0, compute_cycles=1000.0,
                     softmax_cycles=100.0, write_bytes=500.0)
        result = simulate([p], edge_accel)
        bw = edge_accel.offchip_bytes_per_cycle
        expected = 5000.0 / bw + 1100.0 + 500.0 / bw
        assert result.total_cycles == pytest.approx(expected)

    def test_compute_bound_pipeline_hides_fetches(self, edge_accel):
        # Tiny fetches, big compute: total ~ first fetch + N * compute.
        passes = [
            TilePass(index=i, read_bytes=50.0, compute_cycles=1000.0,
                     softmax_cycles=0.0, write_bytes=50.0)
            for i in range(10)
        ]
        result = simulate(passes, edge_accel)
        assert result.total_cycles == pytest.approx(
            1.0 + 10 * 1000.0 + 2.0, rel=0.05
        )

    def test_memory_bound_pipeline_hides_compute(self, edge_accel):
        passes = [
            TilePass(index=i, read_bytes=100000.0, compute_cycles=10.0,
                     softmax_cycles=0.0, write_bytes=0.0)
            for i in range(10)
        ]
        result = simulate(passes, edge_accel)
        fetch = 100000.0 / edge_accel.offchip_bytes_per_cycle
        assert result.total_cycles == pytest.approx(10 * fetch + 10.0,
                                                    rel=0.05)

    def test_timeline_is_consistent(self, edge_accel):
        cfg = small_cfg()
        sched = build_la_schedule(cfg, flat_r(32), edge_accel)
        result = simulate(sched, edge_accel)
        for entry in result.timeline:
            assert entry.fetch_start <= entry.fetch_end <= entry.exec_end
        # Execution order preserved.
        ends = [t.exec_end for t in result.timeline]
        assert ends == sorted(ends)

    def test_occupancy_bounded(self, edge_accel):
        cfg = small_cfg()
        sched = build_la_schedule(cfg, flat_r(32), edge_accel)
        result = simulate(sched, edge_accel)
        assert 0.0 < result.compute_occupancy <= 1.0


class TestCrossValidation:
    """The simulator must agree with the closed-form model in the
    fitting regime — the repository's MAESTRO-correlation substitute."""

    @pytest.mark.parametrize("rows", [16, 32, 64])
    def test_analytical_matches_sim_r_gran(self, edge_accel, rows):
        from repro.core.perf import cost_la_pair

        cfg = small_cfg(batch=2, heads=4, seq=256, d_model=256)
        df = flat_r(rows)
        sim = simulate(build_la_schedule(cfg, df, edge_accel), edge_accel)
        ana = cost_la_pair(cfg, df, edge_accel)
        assert ana.total_cycles == pytest.approx(sim.total_cycles, rel=0.10)

    def test_analytical_matches_sim_h_gran(self, edge_accel):
        from repro.core.perf import cost_la_pair

        cfg = small_cfg(batch=2, heads=4, seq=128, d_model=128)
        df = flat_x(Granularity.H)
        sim = simulate(build_la_schedule(cfg, df, edge_accel), edge_accel)
        ana = cost_la_pair(cfg, df, edge_accel)
        assert ana.total_cycles == pytest.approx(sim.total_cycles, rel=0.10)

    def test_sim_dram_bytes_match_analytical(self, edge_accel):
        from repro.core.perf import cost_la_pair

        cfg = small_cfg(batch=2, heads=4, seq=256, d_model=256)
        df = flat_r(32)
        sim = simulate(build_la_schedule(cfg, df, edge_accel), edge_accel)
        ana = cost_la_pair(cfg, df, edge_accel)
        assert sim.dram_bytes == pytest.approx(ana.dram_bytes, rel=0.01)
