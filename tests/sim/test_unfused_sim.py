"""Cross-validation of the unfused (three-phase) model vs the simulator."""

import pytest

from repro.arch.presets import edge
from repro.core.dataflow import base, flat_r
from repro.core.perf import cost_la_pair
from repro.ops.attention import AttentionConfig
from repro.sim.engine import simulate
from repro.sim.schedule import build_la_schedule, build_unfused_la_schedule


def cfg(batch=2, heads=4, seq=256, d_model=256):
    return AttentionConfig(
        "unfused-sim", batch=batch, heads=heads, d_model=d_model,
        seq_q=seq, seq_kv=seq, d_ff=4 * d_model,
    )


class TestUnfusedSchedule:
    def test_three_phases_of_passes(self, edge_accel):
        c = cfg()
        sched = build_unfused_la_schedule(c, edge_accel)
        assert len(sched) == 3 * c.batch * c.heads

    def test_logit_round_trip_volumes(self, edge_accel):
        c = cfg()
        sched = build_unfused_la_schedule(c, edge_accel)
        e = edge_accel.bytes_per_element
        logit_bytes = c.batch * c.heads * c.seq_q * c.seq_kv * e
        writes = sum(p.write_bytes for p in sched)
        reads = sum(p.read_bytes for p in sched)
        # Logits written twice (raw + softmaxed) and read twice.
        assert writes >= 2 * logit_bytes
        assert reads >= 2 * logit_bytes

    def test_softmax_passes_have_no_pe_compute(self, edge_accel):
        c = cfg()
        sched = build_unfused_la_schedule(c, edge_accel)
        bh = c.batch * c.heads
        for p in sched[bh:2 * bh]:
            assert p.compute_cycles == 0.0
            assert p.softmax_cycles > 0.0


class TestUnfusedCrossValidation:
    @pytest.mark.parametrize("seq", [128, 256, 512])
    def test_analytical_within_15pct_and_conservative(self, seq, edge_accel):
        """The closed-form three-phase model serializes phase
        boundaries the explicit pipeline can partially overlap, so it
        may be slower — but never faster, and never off by much."""
        c = cfg(seq=seq)
        sim = simulate(build_unfused_la_schedule(c, edge_accel), edge_accel)
        ana = cost_la_pair(c, base(), edge_accel)
        assert ana.total_cycles >= sim.total_cycles * 0.97
        assert ana.total_cycles == pytest.approx(sim.total_cycles, rel=0.15)

    def test_fused_beats_unfused_in_both_layers(self, edge_accel):
        """The headline gap appears identically in the simulator and
        the analytical model."""
        c = cfg()
        sim_base = simulate(
            build_unfused_la_schedule(c, edge_accel), edge_accel
        ).total_cycles
        sim_flat = simulate(
            build_la_schedule(c, flat_r(32), edge_accel), edge_accel
        ).total_cycles
        ana_base = cost_la_pair(c, base(), edge_accel).total_cycles
        ana_flat = cost_la_pair(c, flat_r(32), edge_accel).total_cycles
        sim_speedup = sim_base / sim_flat
        ana_speedup = ana_base / ana_flat
        assert sim_speedup > 1.1
        assert ana_speedup == pytest.approx(sim_speedup, rel=0.2)
