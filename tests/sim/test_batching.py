"""Tests for the continuous prefill+decode batching layer."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.arch.memory import OffChipSpec
from repro.arch.presets import get_platform
from repro.arch.sfu import SFUSpec
from repro.core.dataflow import (
    AttentionVariant,
    Granularity,
    base_x,
    flat_r,
)
from repro.models.configs import model_config
from repro.sim.batching import (
    BatchingPolicy,
    ServeRequest,
    run_serving,
    step_passes,
    synthetic_trace,
)
from repro.sim.engine import PassTimeline, simulate


@pytest.fixture(scope="module")
def accel():
    # A decode-tier die: HBM-class bandwidth and a narrow SFU, so both
    # the memory and the softmax serial terms are visible in schedules.
    edge = get_platform("edge")
    return replace(
        edge,
        offchip=OffChipSpec(bandwidth_bytes_per_sec=2000e9),
        sfu=SFUSpec(elements_per_cycle=32),
    )


@pytest.fixture(scope="module")
def cfg():
    return model_config("bert", seq=512, batch=1)


class TestStepPasses:
    def test_fused_one_pass_per_participant(self, cfg, accel):
        passes = step_passes((256, 1024), [512, 513, 514], cfg,
                             flat_r(64), accel)
        assert len(passes) == 4

    def test_unfused_three_passes_per_participant(self, cfg, accel):
        passes = step_passes((256, 1024), [512], cfg,
                             base_x(Granularity.B), accel)
        assert len(passes) == 6

    def test_empty_step_rejected(self, cfg, accel):
        with pytest.raises(ValueError):
            step_passes(None, [], cfg, flat_r(64), accel)

    def test_decode_reads_scale_with_kv(self, cfg, accel):
        small = step_passes(None, [1024], cfg, flat_r(64), accel)[0]
        large = step_passes(None, [4096], cfg, flat_r(64), accel)[0]
        assert large.read_bytes > 3.5 * small.read_bytes
        assert large.compute_cycles > 3.5 * small.compute_cycles

    def test_fusemax_exposes_only_excess_softmax(self, cfg, accel):
        ref = step_passes(None, [4096], cfg, flat_r(64), accel)[0]
        fm = step_passes(
            None, [4096], cfg,
            flat_r(64, variant=AttentionVariant.FUSEMAX), accel,
        )[0]
        # Exposed softmax = max(0, softmax - compute): the engine's
        # exec time becomes max(compute, softmax).
        assert fm.compute_cycles == ref.compute_cycles
        assert fm.compute_cycles + fm.softmax_cycles == pytest.approx(
            max(ref.compute_cycles, ref.softmax_cycles)
        )

    def test_flashd_shrinks_the_softmax_term(self, cfg, accel):
        ref = step_passes(None, [4096], cfg, flat_r(64), accel)[0]
        fd = step_passes(
            None, [4096], cfg,
            flat_r(64, variant=AttentionVariant.FLASH_D), accel,
        )[0]
        assert fd.softmax_cycles < ref.softmax_cycles
        assert fd.read_bytes == ref.read_bytes


class TestMixedScheduleCrossValidation:
    """The composed schedule agrees with the engine run pass by pass."""

    def test_step_time_equals_sum_of_parts_lower_bounds(self, cfg, accel):
        """Engine total is bounded by serial fetch and serial exec."""
        passes = step_passes((512, 512), [1024, 2048, 4096], cfg,
                             flat_r(64), accel)
        result = simulate(passes, accel)
        fetch = sum(
            p.read_bytes for p in passes
        ) / (accel.offchip.bandwidth_bytes_per_sec / accel.frequency_hz)
        exec_total = sum(
            p.compute_cycles + p.softmax_cycles for p in passes
        )
        assert result.total_cycles >= max(fetch, exec_total)
        assert result.total_cycles <= fetch + exec_total

    def test_mixed_step_equals_manual_pass_concatenation(self, cfg, accel):
        """Composing prefill+decodes = concatenating their pass lists."""
        prefill_only = step_passes((256, 768), [], cfg, flat_r(64), accel)
        decode_only = step_passes(None, [1024, 2048], cfg, flat_r(64),
                                  accel)
        mixed = step_passes((256, 768), [1024, 2048], cfg, flat_r(64),
                            accel)
        manual = prefill_only + [
            replace(p, index=len(prefill_only) + i)
            for i, p in enumerate(decode_only)
        ]
        assert mixed == manual

    def test_unfused_decode_moves_more_bytes_than_fused(self, cfg, accel):
        fused = step_passes(None, [8192], cfg, flat_r(64), accel)
        unfused = step_passes(None, [8192], cfg, base_x(Granularity.B),
                              accel)
        fused_bytes = sum(p.read_bytes + p.write_bytes for p in fused)
        unfused_bytes = sum(p.read_bytes + p.write_bytes for p in unfused)
        # The unfused baseline spills and re-reads the logits.  Cycles
        # only tie-or-lose (both serialize softmax against compute);
        # the strict win needs the pipelined variant.
        assert unfused_bytes > fused_bytes
        unfused_cycles = simulate(unfused, accel).total_cycles
        assert unfused_cycles >= simulate(fused, accel).total_cycles
        fusemax = step_passes(
            None, [8192], cfg,
            flat_r(64, variant=AttentionVariant.FUSEMAX), accel,
        )
        assert simulate(fusemax, accel).total_cycles < unfused_cycles


class TestRunServing:
    def test_all_requests_complete_with_metrics(self, cfg, accel):
        trace = synthetic_trace(12, seed=3, prompt_range=(32, 128),
                                output_range=(4, 8),
                                mean_interarrival_cycles=50_000.0)
        report = run_serving(trace, cfg, flat_r(64), accel,
                             BatchingPolicy(prefill_chunk=64,
                                            max_decode_batch=4))
        assert report.completed == 12
        assert len(report.metrics) == 12
        for m in report.metrics:
            assert m.first_token_cycle > m.arrival_cycle
            assert m.finish_cycle > m.first_token_cycle
            assert m.ttft_cycles > 0 and m.tpot_cycles > 0

    def test_deterministic(self, cfg, accel):
        trace = synthetic_trace(8, seed=5, prompt_range=(32, 64),
                                output_range=(2, 4))
        a = run_serving(trace, cfg, flat_r(64), accel)
        b = run_serving(trace, cfg, flat_r(64), accel)
        assert a == b

    def test_variants_order_as_analytical_model_predicts(self, cfg, accel):
        trace = synthetic_trace(10, seed=9, prompt_range=(256, 512),
                                output_range=(8, 16),
                                mean_interarrival_cycles=200_000.0)
        policy = BatchingPolicy(prefill_chunk=256, max_decode_batch=4)
        tpot = {
            df.name: run_serving(trace, cfg, df, accel, policy).tpot_p50
            for df in (base_x(Granularity.B), flat_r(64),
                       flat_r(64, variant=AttentionVariant.FUSEMAX))
        }
        assert tpot["FLAT-R64+fusemax"] <= tpot["FLAT-R64"]
        assert tpot["FLAT-R64"] <= tpot["Base-B"]

    def test_prefill_chunking_bounds_decode_stall(self, cfg, accel):
        # One long prompt plus a decoding request: smaller chunks mean
        # the decoder advances during the prefill instead of stalling.
        reqs = (
            ServeRequest(rid=0, arrival_cycle=0.0, prompt_tokens=16,
                         output_tokens=8),
            ServeRequest(rid=1, arrival_cycle=0.0, prompt_tokens=2048,
                         output_tokens=2),
        )
        coarse = run_serving(
            reqs, cfg, flat_r(64), accel,
            BatchingPolicy(prefill_chunk=2048, max_decode_batch=4),
        )
        fine = run_serving(
            reqs, cfg, flat_r(64), accel,
            BatchingPolicy(prefill_chunk=128, max_decode_batch=4),
        )
        coarse_m = next(m for m in coarse.metrics if m.rid == 0)
        fine_m = next(m for m in fine.metrics if m.rid == 0)
        assert fine_m.tpot_cycles < coarse_m.tpot_cycles

    def test_rejects_duplicate_ids(self, cfg, accel):
        reqs = (
            ServeRequest(rid=0, arrival_cycle=0.0, prompt_tokens=4,
                         output_tokens=1),
            ServeRequest(rid=0, arrival_cycle=1.0, prompt_tokens=4,
                         output_tokens=1),
        )
        with pytest.raises(ValueError, match="unique"):
            run_serving(reqs, cfg, flat_r(64), accel)

    def test_rejects_empty_trace(self, cfg, accel):
        with pytest.raises(ValueError):
            run_serving((), cfg, flat_r(64), accel)


class TestPassTimelineInvariant:
    """Satellite fix: ``fetch_end <= exec_start`` is now enforced."""

    def test_valid_timeline_accepted(self):
        PassTimeline(index=0, fetch_start=0.0, fetch_end=5.0,
                     exec_start=5.0, exec_end=9.0)

    def test_exec_before_fetch_done_rejected(self):
        with pytest.raises(ValueError):
            PassTimeline(index=0, fetch_start=0.0, fetch_end=5.0,
                         exec_start=4.0, exec_end=9.0)

    def test_simulated_timelines_satisfy_the_invariant(self, cfg, accel):
        passes = step_passes((128, 512), [256, 512], cfg, flat_r(64),
                             accel)
        for line in simulate(passes, accel).timeline:
            assert line.fetch_start <= line.fetch_end
            assert line.fetch_end <= line.exec_start
            assert line.exec_start <= line.exec_end


class TestSyntheticTrace:
    def test_seeded_and_sorted(self):
        a = synthetic_trace(20, seed=1)
        b = synthetic_trace(20, seed=1)
        assert a == b
        arrivals = [r.arrival_cycle for r in a]
        assert arrivals == sorted(arrivals)

    def test_respects_ranges(self):
        trace = synthetic_trace(50, seed=2, prompt_range=(10, 20),
                                output_range=(3, 5))
        assert all(10 <= r.prompt_tokens <= 20 for r in trace)
        assert all(3 <= r.output_tokens <= 5 for r in trace)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthetic_trace(0)
