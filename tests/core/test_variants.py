"""Tests for the attention-variant zoo (FLASH-D, FuseMax).

Covers the variant field end to end: spelling/parsing, fused-only
enforcement, the scalar cost model's softmax-term accounting, scalar
vs batch bit-equality on decode shapes, enumeration stability (the
default space is byte-identical to the pre-variant space), candidate
invariants, admissible bounds (candidate-gated search equals
exhaustive search with variants enabled), and JSON round-tripping.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.arch.config_io import dataflow_from_dict, dataflow_to_dict
from repro.arch.presets import get_platform
from repro.arch.sfu import SFUSpec
from repro.core.batch import evaluate_grid
from repro.core.dataflow import (
    AttentionVariant,
    Granularity,
    base_x,
    flat_r,
    flat_x,
    parse_dataflow,
)
from repro.core.dse import (
    Objective,
    SearchSpace,
    enumerate_dataflows,
    search,
)
from repro.core.engine import EngineOptions
from repro.core.perf import cost_scope
from repro.models.configs import model_config
from repro.ops.attention import Scope
from repro.ops.decode import decode_config

ALL_VARIANTS = tuple(AttentionVariant)


@pytest.fixture(scope="module")
def accel():
    # A deliberately narrow SFU: on the stock presets (SFU as wide as
    # the PE array) the softmax serial term vanishes and the variants
    # tie the baseline, which would make these tests vacuous.
    edge = get_platform("edge")
    return replace(edge, sfu=SFUSpec(elements_per_cycle=16))


@pytest.fixture(scope="module")
def cfg():
    return model_config("bert", seq=256, batch=2)


class TestSpelling:
    def test_parse_round_trips_variants(self):
        for spec in ("flat-r64+flashd", "flat-r64+fusemax", "flat-b+flashd"):
            df = parse_dataflow(spec)
            assert df.fused
            assert df.variant is not AttentionVariant.SOFTMAX
            assert parse_dataflow(df.name) == df

    def test_base_spellings_reject_variants(self):
        with pytest.raises(ValueError):
            parse_dataflow("base+flashd")

    def test_variants_are_fused_only(self):
        with pytest.raises(ValueError, match="fused"):
            replace(base_x(Granularity.B),
                    variant=AttentionVariant.FUSEMAX)

    def test_constructors_suffix_the_name(self):
        assert flat_r(32, variant=AttentionVariant.FLASH_D).name == \
            "FLAT-R32+flashd"
        assert flat_x(Granularity.H,
                      variant=AttentionVariant.FUSEMAX).name == \
            "FLAT-H+fusemax"


class TestScalarAccounting:
    """The variant's softmax term lands exactly where the model says."""

    def test_flashd_drops_the_division_pass(self, cfg, accel):
        ref = cost_scope(cfg, Scope.LA, accel, flat_r(32))
        fd = cost_scope(cfg, Scope.LA, accel,
                        flat_r(32, variant=AttentionVariant.FLASH_D))
        assert fd.total_cycles < ref.total_cycles
        # The SFU op count drops by exactly one pass over the logits
        # minus one pass over the (much smaller) output tile.
        assert fd.counts.sfu_ops < ref.counts.sfu_ops

    def test_fusemax_overlaps_softmax_with_compute(self, cfg, accel):
        ref = cost_scope(cfg, Scope.LA, accel, flat_r(32))
        fm = cost_scope(cfg, Scope.LA, accel,
                        flat_r(32, variant=AttentionVariant.FUSEMAX))
        assert fm.total_cycles < ref.total_cycles
        # Pipelining hides cycles but does not change the work done.
        assert fm.counts.sfu_ops == ref.counts.sfu_ops
        assert fm.counts.macs == ref.counts.macs
        assert fm.dram_bytes == ref.dram_bytes

    def test_variants_near_tie_when_sfu_is_wide(self, cfg):
        # On the stock preset (SFU as wide as the PE array) the softmax
        # serial term is marginal: the variant can only shave it, and
        # the shave is a few percent at most.
        wide = get_platform("edge")
        ref = cost_scope(cfg, Scope.LA, wide, flat_r(32))
        fm = cost_scope(cfg, Scope.LA, wide,
                        flat_r(32, variant=AttentionVariant.FUSEMAX))
        assert fm.total_cycles <= ref.total_cycles
        assert fm.total_cycles >= 0.95 * ref.total_cycles


class TestBatchEquivalence:
    """Scalar vs ``evaluate_grid`` bit-equality on decode shapes."""

    def test_decode_step_sweep_bit_equal(self, accel):
        prefill = model_config("bert", seq=512, batch=1)
        dataflows = [
            flat_r(1),
            flat_r(1, variant=AttentionVariant.FLASH_D),
            flat_r(1, variant=AttentionVariant.FUSEMAX),
            flat_x(Granularity.B, variant=AttentionVariant.FLASH_D),
            base_x(Granularity.B),
        ]
        for kv_len in (128, 1024, 4096):
            step = decode_config(prefill, kv_len)
            grid = evaluate_grid(step, Scope.LA, accel, dataflows)
            for i, df in enumerate(dataflows):
                cost = cost_scope(step, Scope.LA, accel, df)
                assert grid.total_cycles[i] == cost.total_cycles, df.name
                assert grid.dram_bytes[i] == cost.dram_bytes, df.name
                assert grid.sfu_ops[i] == cost.counts.sfu_ops, df.name

    def test_prefill_variants_bit_equal(self, cfg, accel):
        dataflows = [
            flat_r(r, variant=v)
            for r in (8, 64) for v in ALL_VARIANTS
        ]
        grid = evaluate_grid(cfg, Scope.LA, accel, dataflows)
        for i, df in enumerate(dataflows):
            cost = cost_scope(cfg, Scope.LA, accel, df)
            assert grid.total_cycles[i] == cost.total_cycles, df.name
            assert grid.sfu_ops[i] == cost.counts.sfu_ops, df.name


class TestEnumeration:
    def test_default_space_is_unchanged(self, cfg):
        default = [df.name for df in enumerate_dataflows(cfg, None)]
        assert not any("+" in name for name in default)

    def test_variant_space_is_a_superset(self, cfg):
        default = list(enumerate_dataflows(cfg, None, SearchSpace()))
        zoo = list(
            enumerate_dataflows(cfg, None,
                                SearchSpace(variants=ALL_VARIANTS))
        )
        assert set(default) <= set(zoo)
        assert len(zoo) > len(default)
        assert all(
            df.fused for df in zoo
            if df.variant is not AttentionVariant.SOFTMAX
        )

    def test_variant_space_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace(variants=(AttentionVariant.FLASH_D,
                                  AttentionVariant.FLASH_D))


class TestSearchWithVariants:
    def test_candidate_gated_equals_exhaustive(self, cfg, accel):
        space = SearchSpace(variants=ALL_VARIANTS)
        gated = search(
            cfg, accel, scope=Scope.LA, space=space, retain_points=False,
            engine=EngineOptions(candidates=True),
        )
        exhaustive = search(
            cfg, accel, scope=Scope.LA, space=space, retain_points=False,
            engine=EngineOptions(candidates=False, batch=False),
        )
        assert gated.best.dataflow == exhaustive.best.dataflow
        assert gated.best.cost.total_cycles == \
            exhaustive.best.cost.total_cycles

    def test_variant_wins_on_narrow_sfu(self, cfg, accel):
        space = SearchSpace(variants=ALL_VARIANTS)
        result = search(cfg, accel, scope=Scope.LA, space=space,
                        retain_points=False)
        baseline = search(cfg, accel, scope=Scope.LA, retain_points=False)
        assert result.best.dataflow.variant is not AttentionVariant.SOFTMAX
        assert result.best.cost.total_cycles < \
            baseline.best.cost.total_cycles

    def test_objectives_accept_variants(self, cfg, accel):
        space = SearchSpace(variants=(AttentionVariant.SOFTMAX,
                                      AttentionVariant.FUSEMAX))
        result = search(cfg, accel, scope=Scope.LA,
                        objective=Objective.EDP, space=space,
                        retain_points=False)
        assert result.best is not None


class TestConfigIO:
    def test_variant_round_trips(self):
        df = flat_r(16, variant=AttentionVariant.FLASH_D)
        data = dataflow_to_dict(df)
        assert data["variant"] == "flash-d"
        assert dataflow_from_dict(data) == df

    def test_default_payload_has_no_variant_key(self):
        data = dataflow_to_dict(flat_r(16))
        assert "variant" not in data
        assert dataflow_from_dict(data) == flat_r(16)
