"""Tests for the two-level memory hierarchy extension."""

import pytest

from repro.arch.presets import edge
from repro.core.dataflow import base, flat_r
from repro.core.hierarchy import MemoryTier, cost_la_pair_two_level
from repro.core.perf import cost_la_pair
from repro.models.configs import model_config

MB = 1024 * 1024


class TestMemoryTier:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryTier(size_bytes=-1, bandwidth_bytes_per_sec=1e11)
        with pytest.raises(ValueError):
            MemoryTier(size_bytes=MB, bandwidth_bytes_per_sec=0)
        with pytest.raises(ValueError):
            MemoryTier(size_bytes=MB, bandwidth_bytes_per_sec=1e11,
                       pj_per_word=-1)


class TestTwoLevelCost:
    @pytest.fixture
    def accel(self):
        return edge()

    @pytest.fixture
    def cfg(self):
        return model_config("bert", seq=65536)

    def test_zero_tier_matches_single_level(self, cfg, accel):
        tier = MemoryTier(size_bytes=0, bandwidth_bytes_per_sec=1e11)
        two = cost_la_pair_two_level(cfg, flat_r(256), accel, tier)
        one = cost_la_pair(cfg, flat_r(256), accel)
        assert two.total_cycles == one.total_cycles
        assert two.dram_bytes == one.dram_bytes

    def test_small_tier_is_noop(self, cfg, accel):
        # A tier smaller than the SG adds nothing.
        tier = MemoryTier(size_bytes=accel.sg_bytes // 2,
                          bandwidth_bytes_per_sec=1e11)
        two = cost_la_pair_two_level(cfg, flat_r(256), accel, tier)
        one = cost_la_pair(cfg, flat_r(256), accel)
        assert two.total_cycles == one.total_cycles

    def test_tier_reduces_dram_traffic(self, cfg, accel):
        tier = MemoryTier(size_bytes=64 * MB,
                          bandwidth_bytes_per_sec=2e11)
        two = cost_la_pair_two_level(cfg, flat_r(256), accel, tier)
        one = cost_la_pair(cfg, flat_r(256), accel)
        assert two.dram_bytes < one.dram_bytes

    def test_tier_recovers_flat_utilization(self, cfg, accel):
        tier = MemoryTier(size_bytes=64 * MB,
                          bandwidth_bytes_per_sec=2e11)
        with_tier = cost_la_pair_two_level(cfg, flat_r(256), accel, tier)
        without = cost_la_pair(cfg, flat_r(256), accel)
        assert with_tier.utilization > without.utilization + 0.2

    def test_tier_helps_flat_more_than_base(self, cfg, accel):
        tier = MemoryTier(size_bytes=64 * MB,
                          bandwidth_bytes_per_sec=2e11)
        base_gain = (
            cost_la_pair_two_level(cfg, base(), accel, tier).utilization
            - cost_la_pair(cfg, base(), accel).utilization
        )
        flat_gain = (
            cost_la_pair_two_level(cfg, flat_r(256), accel, tier).utilization
            - cost_la_pair(cfg, flat_r(256), accel).utilization
        )
        assert flat_gain > 3 * max(base_gain, 0.01)

    def test_bigger_tier_never_hurts(self, cfg, accel):
        utils = []
        for size in (8 * MB, 32 * MB, 128 * MB):
            tier = MemoryTier(size_bytes=size,
                              bandwidth_bytes_per_sec=2e11)
            utils.append(
                cost_la_pair_two_level(cfg, flat_r(256), accel,
                                       tier).utilization
            )
        assert all(b >= a - 1e-9 for a, b in zip(utils, utils[1:]))

    def test_slower_tier_lower_utilization(self, cfg, accel):
        fast = MemoryTier(size_bytes=64 * MB,
                          bandwidth_bytes_per_sec=4e11)
        slow = MemoryTier(size_bytes=64 * MB,
                          bandwidth_bytes_per_sec=0.6e11)
        u_fast = cost_la_pair_two_level(cfg, flat_r(256), accel,
                                        fast).utilization
        u_slow = cost_la_pair_two_level(cfg, flat_r(256), accel,
                                        slow).utilization
        assert u_fast >= u_slow

    def test_energy_between_sg_and_dram(self, cfg, accel):
        """Moving spill traffic to the tier must not raise energy."""
        from repro.energy.model import energy_report

        tier = MemoryTier(size_bytes=64 * MB,
                          bandwidth_bytes_per_sec=2e11)
        one = energy_report(cost_la_pair(cfg, flat_r(256), accel).counts)
        two = energy_report(
            cost_la_pair_two_level(cfg, flat_r(256), accel, tier).counts
        )
        assert two.total_j <= one.total_j
