"""Direct tests of the cost model's internal helpers.

The public invariants live in ``test_perf.py``/``test_perf_properties``;
these pin down the arithmetic of the building blocks so a regression
is reported at the helper, not three layers up.
"""

import pytest

from repro.arch.presets import edge
from repro.core.dataflow import Stationarity
from repro.core.perf import (
    PerfOptions,
    _allocate_staging,
    _blend_passes,
    _mapping_efficiency,
    _Phase,
    _sg_stream_words,
    _strict_axis_eff,
)

_EDGE = edge()


class TestAllocateStaging:
    def test_everything_fits(self):
        fits = _allocate_staging([100.0, 200.0], 1000.0)
        assert fits == [1.0, 1.0]

    def test_priority_order(self):
        # First tensor claims the budget; later ones get the remainder.
        fits = _allocate_staging([600.0, 600.0], 900.0)
        assert fits[0] == 1.0
        assert fits[1] == pytest.approx(0.5)

    def test_zero_sized_tensor_is_trivially_fit(self):
        fits = _allocate_staging([0.0, 500.0], 400.0)
        assert fits[0] == 1.0
        assert fits[1] == pytest.approx(0.8)

    def test_empty_budget(self):
        fits = _allocate_staging([100.0], 0.0)
        assert fits == [0.0]


class TestBlendPasses:
    def test_unstaged_uses_l2_passes(self):
        assert _blend_passes(False, 1.0, 7.0) == 7.0

    def test_staged_and_fitting_is_one_pass(self):
        assert _blend_passes(True, 1.0, 7.0) == 1.0

    def test_strict_spill_restreams(self):
        # Half staged: 0.5 * 1 + 0.5 * (7 + 1) = 4.5
        assert _blend_passes(True, 0.5, 7.0, extra_pass_only=False) == 4.5

    def test_lenient_spill_two_passes(self):
        # Half staged: 0.5 * 1 + 0.5 * 2 = 1.5
        assert _blend_passes(True, 0.5, 7.0, extra_pass_only=True) == 1.5

    def test_lenient_never_exceeds_strict(self):
        for fit in (0.0, 0.3, 0.9, 1.0):
            for passes in (1.0, 4.0, 128.0):
                lenient = _blend_passes(True, fit, passes, True)
                strict = _blend_passes(True, fit, passes, False)
                assert lenient <= strict + 1e-12


class TestMappingEfficiency:
    def test_strict_axis_quantization(self):
        assert _strict_axis_eff(64, 32) == 1.0
        assert _strict_axis_eff(48, 32) == pytest.approx(48 / 64)
        assert _strict_axis_eff(16, 32) == 0.5

    def test_flexible_folds_everything(self):
        opts = PerfOptions(flexible_mapping=True)
        # Space is an exact multiple of the PE count: efficiency 1.
        eff = _mapping_efficiency(32, 32, 32, Stationarity.OUTPUT, _EDGE,
                                  opts)
        assert eff == 1.0

    def test_flexible_instances_fold(self):
        opts = PerfOptions(flexible_mapping=True)
        solo = _mapping_efficiency(8, 8, 8, Stationarity.OUTPUT, _EDGE,
                                   opts, instances=1)
        packed = _mapping_efficiency(8, 8, 8, Stationarity.OUTPUT, _EDGE,
                                     opts, instances=2)
        assert packed >= solo

    def test_rigid_strands_on_narrow_dims(self):
        opts = PerfOptions(flexible_mapping=False)
        eff = _mapping_efficiency(8, 64, 8, Stationarity.OUTPUT, _EDGE,
                                  opts)
        assert eff == pytest.approx((8 / 32) * (8 / 32))

    def test_stationarity_selects_spatial_dims(self):
        opts = PerfOptions(flexible_mapping=False)
        # WEIGHT maps (k, n): a big k saves it where OUTPUT (m, n) loses.
        out = _mapping_efficiency(8, 256, 256, Stationarity.OUTPUT, _EDGE,
                                  opts)
        ws = _mapping_efficiency(8, 256, 256, Stationarity.WEIGHT, _EDGE,
                                 opts)
        assert ws > out


class TestPhase:
    def test_phase_time_is_max_of_streams(self):
        p = _Phase(compute_cycles=100.0, softmax_cycles=10.0,
                   dram_elements=1000.0, sg_words=100.0)
        # dram: 1000 * 2 / 50 = 40; sg: 100 * 2 / 1000 = 0.2.
        assert p.time(_EDGE) == 110.0

    def test_memory_bound_phase(self):
        p = _Phase(compute_cycles=1.0, dram_elements=10000.0)
        assert p.time(_EDGE) == pytest.approx(10000.0 * 2 / 50)


class TestSgStreamWords:
    def test_systolic_injection_rate(self):
        # (rows + cols) / (rows * cols) words per MAC.
        words = _sg_stream_words(1024.0, _EDGE)
        assert words == pytest.approx(1024.0 * 64 / 1024)
