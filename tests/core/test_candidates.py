"""Tests for the analytic candidate-generation layer.

Two bars, matching :mod:`repro.core.candidates`'s contract:

* **Admissibility** — every family's analytic lower bound must sit at
  or below the true cost of every member of that family, and the
  feasible-row interval must agree with the Table 2 closed form it
  inverts.  Randomized (hypothesis) workloads and buffer sizes probe
  the closed forms off the presets.
* **Equivalence** — the generated front end must return the *same
  bytes* as exhaustive enumeration: identical winner, identical cost,
  with the exhaustive winner never bound-pruned (not even by the
  enumeration-order tie gate).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import cloud, edge
from repro.core.candidates import (
    Incumbent,
    family_lower_bound,
    family_representative,
    feasible_row_interval,
    locate_candidate,
    make_incumbent,
    plan_candidates,
)
from repro.core.dataflow import Granularity, flat_r
from repro.core.dse import (
    Objective,
    SearchSpace,
    enumerate_dataflows,
    enumerate_families,
    expand_family,
    family_size,
    search,
)
from repro.core.engine import (
    _BOUND_SLACK,
    EngineOptions,
    clear_evaluation_cache,
    default_warm_start,
)
from repro.core.footprint import footprint_r_gran
from repro.core.perf import PerfOptions, cost_scope, partition_scratchpad
from repro.ops.attention import AttentionConfig, Scope

CANDIDATES = EngineOptions(jobs=1, prune=True, cache_size=4096, batch=True)
EXHAUSTIVE = EngineOptions(jobs=1, prune=True, cache_size=4096, batch=True,
                           candidates=False)

SPACES = {
    "default": SearchSpace(),
    "exhaustive-staging": SearchSpace(exhaustive_staging=True),
    "fused-only": SearchSpace(allow_fused=True, allow_unfused=False,
                              include_plain_base=False),
    "unfused-only": SearchSpace(
        allow_fused=False,
        granularities=(Granularity.M, Granularity.B, Granularity.H),
    ),
}


def _small_cfg(batch=2, heads=4, d_head=16, seq=64):
    return AttentionConfig(
        name="cand", batch=batch, heads=heads, d_model=heads * d_head,
        seq_q=seq, seq_kv=seq, d_ff=4 * heads * d_head,
    )


workloads = st.builds(
    _small_cfg,
    batch=st.integers(min_value=1, max_value=8),
    heads=st.integers(min_value=1, max_value=4),
    d_head=st.sampled_from([16, 32]),
    seq=st.sampled_from([32, 64, 256]),
)
buffer_kb = st.sampled_from([20, 64, 512, 4096, 65536])


class TestPlanStructure:
    """The plan must mirror the exhaustive enumeration exactly."""

    @pytest.mark.parametrize("name", sorted(SPACES))
    def test_families_concatenate_to_enumeration(self, bert_512,
                                                 edge_accel, name):
        space = SPACES[name]
        flat = [
            df
            for fam in enumerate_families(bert_512, space)
            for df in expand_family(bert_512, fam, space)
        ]
        assert flat == list(
            enumerate_dataflows(bert_512, edge_accel, space)
        )

    @pytest.mark.parametrize("name", sorted(SPACES))
    def test_family_size_matches_expansion(self, bert_512, name):
        space = SPACES[name]
        for fam in enumerate_families(bert_512, space):
            assert family_size(fam, space) == len(
                list(expand_family(bert_512, fam, space))
            )

    @pytest.mark.parametrize("name", sorted(SPACES))
    def test_representative_is_first_member(self, bert_512, name):
        """The branch-and-bound scores ``offsets[fi]`` as the rep —
        the representative must be member 0 of every expansion."""
        space = SPACES[name]
        for fam in enumerate_families(bert_512, space):
            first = next(iter(expand_family(bert_512, fam, space)))
            assert family_representative(fam, space) == first

    def test_offsets_are_prefix_sums(self, bert_512, edge_accel):
        space = SearchSpace(exhaustive_staging=True)
        plan = plan_candidates(Objective.RUNTIME, bert_512, Scope.LA,
                               edge_accel, space)
        total = 0
        for size, offset in zip(plan.sizes, plan.offsets):
            assert offset == total
            total += size
        assert plan.total == total == len(
            list(enumerate_dataflows(bert_512, edge_accel, space))
        )

    def test_order_is_best_bound_first(self, bert_512, edge_accel):
        plan = plan_candidates(Objective.RUNTIME, bert_512, Scope.LA,
                               edge_accel)
        keys = [(plan.bounds[i], i) for i in plan.order]
        assert keys == sorted(keys)
        assert sorted(plan.order) == list(range(len(plan.families)))

    def test_footprint_objective_rejected(self, bert_512, edge_accel):
        with pytest.raises(ValueError):
            plan_candidates(Objective.FOOTPRINT, bert_512, Scope.LA,
                            edge_accel)


class TestLocate:
    def test_every_member_found_at_its_index(self, bert_512):
        space = SearchSpace()
        for i, df in enumerate(
            enumerate_dataflows(bert_512, edge(), space)
        ):
            assert locate_candidate(bert_512, space, df) == i

    def test_foreign_row_count_absent(self, bert_512):
        assert locate_candidate(bert_512, SearchSpace(), flat_r(3)) is None


class TestIntervalInversion:
    @settings(max_examples=30, deadline=None)
    @given(cfg=workloads, kb=buffer_kb)
    def test_interval_matches_closed_form(self, cfg, kb):
        accel = edge().with_scratchpad_bytes(kb * 1024)
        options = PerfOptions()
        lo, hi = feasible_row_interval(cfg, accel, options)
        assert lo == 1
        assert hi <= cfg.seq_q
        e = accel.bytes_per_element
        budget = partition_scratchpad(1, True, accel, options)
        budget_elements = budget.staging_budget_bytes // e
        if hi >= 1:
            assert footprint_r_gran(hi, cfg.seq_kv,
                                    cfg.d_head) <= budget_elements
        if hi < cfg.seq_q:
            assert footprint_r_gran(hi + 1, cfg.seq_kv,
                                    cfg.d_head) > budget_elements


class TestBoundAdmissibility:
    """bound(family) <= true cost of every member, always."""

    @settings(max_examples=25, deadline=None)
    @given(cfg=workloads, kb=buffer_kb)
    def test_runtime_bounds_admissible(self, cfg, kb):
        accel = edge().with_scratchpad_bytes(kb * 1024)
        space = SearchSpace()
        for fam in enumerate_families(cfg, space):
            bound = family_lower_bound(Objective.RUNTIME, cfg, Scope.LA,
                                       accel, fam, space)
            for df in expand_family(cfg, fam, space):
                value = cost_scope(cfg, Scope.LA, accel, df).total_cycles
                assert bound <= value, (fam, df.name, bound, value)

    def test_exhaustive_staging_bounds_admissible(self, edge_accel):
        cfg = _small_cfg(seq=64)
        space = SearchSpace(exhaustive_staging=True)
        for fam in enumerate_families(cfg, space):
            bound = family_lower_bound(Objective.RUNTIME, cfg, Scope.LA,
                                       accel=edge_accel, family=fam,
                                       space=space)
            for df in expand_family(cfg, fam, space):
                value = cost_scope(cfg, Scope.LA, edge_accel,
                                   df).total_cycles
                assert bound <= value, (fam, df.name, bound, value)

    def test_block_scope_bounds_admissible(self, edge_accel):
        cfg = _small_cfg(seq=64)
        space = SearchSpace()
        for fam in enumerate_families(cfg, space):
            bound = family_lower_bound(Objective.RUNTIME, cfg,
                                       Scope.BLOCK, edge_accel, fam,
                                       space)
            for df in expand_family(cfg, fam, space):
                value = cost_scope(cfg, Scope.BLOCK, edge_accel,
                                   df).total_cycles
                assert bound <= value, (fam, df.name, bound, value)

    @settings(max_examples=15, deadline=None)
    @given(cfg=workloads, kb=buffer_kb)
    def test_winner_never_pruned(self, cfg, kb):
        """The exhaustive winner's family survives both gates: its
        bound can never exceed the optimum, and the tie gate cannot
        fire against it (the family offset is <= the winner index)."""
        accel = edge().with_scratchpad_bytes(kb * 1024)
        space = SearchSpace()
        plan = plan_candidates(Objective.RUNTIME, cfg, Scope.LA, accel,
                               space)
        best_value, best_index = None, None
        for i, df in enumerate(enumerate_dataflows(cfg, accel, space)):
            value = cost_scope(cfg, Scope.LA, accel, df).total_cycles
            if best_value is None or value < best_value:
                best_value, best_index = value, i
        fi = max(
            i for i in range(len(plan.families))
            if plan.offsets[i] <= best_index
        )
        assert plan.bounds[fi] <= best_value
        assert plan.offsets[fi] <= best_index
        gated = plan.bounds[fi] > best_value or (
            plan.bounds[fi] >= best_value * _BOUND_SLACK
            and plan.offsets[fi] > best_index
        )
        assert not gated


class TestSearchEquivalence:
    """Generated and exhaustive front ends must agree to the byte."""

    @pytest.mark.parametrize("name", sorted(SPACES))
    def test_same_winner_all_spaces(self, edge_accel, name):
        cfg = _small_cfg(seq=64)
        clear_evaluation_cache()
        slow = search(cfg, edge_accel, scope=Scope.LA, space=SPACES[name],
                      engine=EXHAUSTIVE, retain_points=False)
        clear_evaluation_cache()
        fast = search(cfg, edge_accel, scope=Scope.LA, space=SPACES[name],
                      engine=CANDIDATES, retain_points=False)
        assert fast.best.dataflow == slow.best.dataflow
        assert fast.best.cost == slow.best.cost
        assert fast.best.energy == slow.best.energy

    @settings(max_examples=12, deadline=None)
    @given(cfg=workloads, kb=buffer_kb)
    def test_same_winner_randomized(self, cfg, kb):
        accel = edge().with_scratchpad_bytes(kb * 1024)
        clear_evaluation_cache()
        slow = search(cfg, accel, scope=Scope.LA, engine=EXHAUSTIVE,
                      retain_points=False)
        clear_evaluation_cache()
        fast = search(cfg, accel, scope=Scope.LA, engine=CANDIDATES,
                      retain_points=False)
        assert fast.best.dataflow == slow.best.dataflow
        assert fast.best.cost == slow.best.cost

    def test_objectives_agree(self, small_cfg, edge_accel):
        for objective in (Objective.RUNTIME, Objective.ENERGY,
                          Objective.EDP):
            clear_evaluation_cache()
            slow = search(small_cfg, edge_accel, objective=objective,
                          engine=EXHAUSTIVE, retain_points=False)
            clear_evaluation_cache()
            fast = search(small_cfg, edge_accel, objective=objective,
                          engine=CANDIDATES, retain_points=False)
            assert fast.best.dataflow == slow.best.dataflow
            assert fast.best.cost == slow.best.cost

    def test_footprint_objective_uses_exhaustive_path(self, small_cfg,
                                                      edge_accel):
        """FOOTPRINT has no bound; the engine must fall back rather
        than reject the search."""
        clear_evaluation_cache()
        res = search(small_cfg, edge_accel, objective=Objective.FOOTPRINT,
                     engine=CANDIDATES, retain_points=False)
        assert res.stats.candidates_generated == 0

    def test_stats_ledger_balances(self, small_cfg, edge_accel):
        clear_evaluation_cache()
        res = search(small_cfg, edge_accel, engine=CANDIDATES,
                     retain_points=False)
        s = res.stats
        assert s.enumerated == s.cache_hits + s.pruned + s.evaluated
        assert s.candidates_generated + s.candidates_skipped == s.enumerated
        assert s.candidates_skipped <= s.pruned


class TestWarmStart:
    """Warm starts change the amount of work, never the answer."""

    def _sweep(self, cfg, accel, sizes, warm):
        results = []
        incumbent = None
        for size in sizes:
            sized = accel.with_scratchpad_bytes(size)
            res = search(cfg, sized, scope=Scope.LA, engine=CANDIDATES,
                         retain_points=False,
                         warm_start=incumbent if warm else None)
            if warm:
                incumbent = make_incumbent(res, Scope.LA, sized)
            results.append(res)
        return results

    def test_warm_sweep_bit_identical_to_cold(self, edge_accel):
        cfg = _small_cfg(seq=256)
        sizes = [20 * 1024, 128 * 1024, 512 * 1024, 4096 * 1024]
        clear_evaluation_cache()
        cold = self._sweep(cfg, edge_accel, sizes, warm=False)
        clear_evaluation_cache()
        warm = self._sweep(cfg, edge_accel, sizes, warm=True)
        for c, w in zip(cold, warm):
            assert w.best.dataflow == c.best.dataflow
            assert w.best.cost == c.best.cost
            assert w.best.energy == c.best.energy

    def test_stale_incumbent_is_reevaluated(self, edge_accel,
                                            cloud_accel):
        """A seed from another accelerator (with a poisoned carried
        value) must be re-scored under the current one — the result
        cannot depend on the stale value."""
        cfg = _small_cfg(seq=64)
        clear_evaluation_cache()
        donor = search(cfg, cloud_accel, scope=Scope.LA,
                       engine=CANDIDATES, retain_points=False)
        stale = Incumbent(
            dataflow=donor.best.dataflow, objective=Objective.RUNTIME,
            scope=Scope.LA, options=PerfOptions(), value=0.0,
        )
        clear_evaluation_cache()
        baseline = search(cfg, edge_accel, scope=Scope.LA,
                          engine=CANDIDATES, retain_points=False)
        clear_evaluation_cache()
        seeded = search(cfg, edge_accel, scope=Scope.LA,
                        engine=CANDIDATES, retain_points=False,
                        warm_start=stale)
        assert seeded.best.dataflow == baseline.best.dataflow
        assert seeded.best.cost == baseline.best.cost

    @pytest.mark.parametrize(
        "mutate",
        [
            dict(objective=Objective.ENERGY),
            dict(scope=Scope.BLOCK),
            dict(options=PerfOptions(l2_reserve_fraction=0.25)),
            dict(dataflow=flat_r(3)),  # rows outside the ladder
        ],
        ids=["objective", "scope", "options", "not-in-space"],
    )
    def test_mismatched_incumbent_rejected(self, edge_accel, mutate):
        import repro.obs as obs

        cfg = _small_cfg(seq=64)
        clear_evaluation_cache()
        donor = search(cfg, edge_accel, scope=Scope.LA,
                       engine=CANDIDATES, retain_points=False)
        fields = dict(
            dataflow=donor.best.dataflow, objective=Objective.RUNTIME,
            scope=Scope.LA, options=PerfOptions(),
        )
        fields.update(mutate)
        bad = Incumbent(**fields)
        clear_evaluation_cache()
        baseline = search(cfg, edge_accel, scope=Scope.LA,
                          engine=CANDIDATES, retain_points=False)
        clear_evaluation_cache()
        with obs.observed() as session:
            seeded = search(cfg, edge_accel, scope=Scope.LA,
                            engine=CANDIDATES, retain_points=False,
                            warm_start=bad)
            snap = session.registry.snapshot()
        assert snap["engine.warm_start.rejected"]["value"] == 1
        assert seeded.best.dataflow == baseline.best.dataflow
        assert seeded.best.cost == baseline.best.cost

    def test_buffer_sweep_warm_flag_is_invisible(self, edge_accel):
        """The sweep helper's warm-start wiring must not change a
        single point of the produced curves."""
        from repro.analysis.utilization import buffer_sweep

        cfg = _small_cfg(seq=64)
        spaces = {"opt": SearchSpace()}
        sizes = (20 * 1024, 512 * 1024, 4096 * 1024)
        clear_evaluation_cache()
        cold = buffer_sweep(cfg, Scope.LA, edge_accel, [], sizes,
                            dse_spaces=spaces)
        clear_evaluation_cache()
        with default_warm_start(True):
            warm = buffer_sweep(cfg, Scope.LA, edge_accel, [], sizes,
                                dse_spaces=spaces)
        assert warm == cold

    def test_memo_hit_short_circuits_repeat_search(self, small_cfg,
                                                   edge_accel):
        clear_evaluation_cache()
        first = search(small_cfg, edge_accel, engine=CANDIDATES,
                       retain_points=False)
        second = search(small_cfg, edge_accel, engine=CANDIDATES,
                        retain_points=False)
        assert second.best.dataflow == first.best.dataflow
        assert second.stats.batch_evaluations == 0
        assert second.stats.candidates_generated == 0
