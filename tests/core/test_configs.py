"""Unit tests for the named accelerator policies (Figure 7(c))."""

import pytest

from repro.core.configs import (
    attacc,
    attacc_m,
    attacc_r,
    base_accel,
    flex_accel,
    flex_accel_m,
    named_policies,
)
from repro.ops.attention import Scope


class TestPolicyShapes:
    def test_base_accel_runs_plain_base(self, bert_512, edge_accel):
        best = base_accel().evaluate(bert_512, edge_accel)
        assert best.dataflow.name == "Base"
        assert not best.dataflow.fused

    def test_flex_accel_never_fuses(self, bert_512, edge_accel):
        best = flex_accel().evaluate(bert_512, edge_accel)
        assert not best.dataflow.fused

    def test_flex_accel_m_restricted_to_m(self, bert_512, edge_accel):
        from repro.core.dataflow import Granularity

        result = flex_accel_m().search(bert_512, edge_accel)
        for p in result.points:
            assert p.dataflow.granularity in (None, Granularity.M)
            assert not p.dataflow.fused

    def test_attacc_r_fixed_rows(self, bert_512, edge_accel):
        result = attacc_r(64).search(bert_512, edge_accel)
        assert all(p.dataflow.rows == 64 for p in result.points)
        assert all(p.dataflow.fused for p in result.points)

    def test_attacc_r_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            attacc_r(0)

    def test_named_policies_order(self):
        names = [p.name for p in named_policies()]
        assert names == ["FlexAccel-M", "FlexAccel", "ATTACC"]


class TestPolicyOrdering:
    """Supersets of the search space can never do worse."""

    @pytest.mark.parametrize("scope", [Scope.LA, Scope.BLOCK])
    def test_attacc_at_least_flex(self, bert_512, edge_accel, scope):
        flex = flex_accel().evaluate(bert_512, edge_accel, scope=scope)
        att = attacc().evaluate(bert_512, edge_accel, scope=scope)
        assert att.cost.total_cycles <= flex.cost.total_cycles

    def test_flex_at_least_flex_m(self, bert_512, edge_accel):
        fm = flex_accel_m().evaluate(bert_512, edge_accel)
        fx = flex_accel().evaluate(bert_512, edge_accel)
        assert fx.cost.total_cycles <= fm.cost.total_cycles

    def test_attacc_at_least_attacc_m(self, bert_512, edge_accel):
        am = attacc_m().evaluate(bert_512, edge_accel)
        at = attacc().evaluate(bert_512, edge_accel)
        assert at.cost.total_cycles <= am.cost.total_cycles

    def test_flexible_policies_beat_rigid_base(self, bert_512, edge_accel):
        ba = base_accel().evaluate(bert_512, edge_accel)
        fx = flex_accel().evaluate(bert_512, edge_accel)
        assert fx.cost.total_cycles <= ba.cost.total_cycles

    def test_attacc_speedup_on_cloud_long_sequence(self, cloud_accel):
        from repro.models.configs import model_config

        cfg = model_config("xlm", seq=16384)
        fx = flex_accel().evaluate(cfg, cloud_accel, scope=Scope.LA)
        at = attacc().evaluate(cfg, cloud_accel, scope=Scope.LA)
        assert fx.cost.total_cycles / at.cost.total_cycles > 2.0
