"""Unit tests for the dataflow configuration space."""

import pytest

from repro.core.dataflow import (
    Dataflow,
    Granularity,
    StagingPolicy,
    Stationarity,
    base,
    base_x,
    flat_r,
    flat_x,
)


class TestStagingPolicy:
    def test_all_enabled(self):
        assert StagingPolicy.all_enabled().as_tuple() == (True,) * 5

    def test_all_disabled(self):
        p = StagingPolicy.all_disabled()
        assert p.as_tuple() == (False,) * 5
        assert not p.any_enabled

    def test_intermediate_only_matches_walkthrough(self):
        p = StagingPolicy.intermediate_only()
        assert p.intermediate and not (p.lhs or p.rhs or p.rhs2 or p.out)


class TestDataflowValidation:
    def test_base_has_no_l3(self):
        df = base()
        assert not df.has_l3
        assert not df.fused

    def test_fused_requires_granularity(self):
        with pytest.raises(ValueError):
            Dataflow(name="bad", fused=True, granularity=None)

    def test_plain_base_cannot_stage(self):
        with pytest.raises(ValueError):
            Dataflow(
                name="bad", fused=False, granularity=None,
                staging=StagingPolicy.all_enabled(),
            )

    def test_row_granularity_requires_fusion(self):
        with pytest.raises(ValueError):
            Dataflow(
                name="bad", fused=False, granularity=Granularity.R, rows=8,
            )

    def test_row_granularity_requires_rows(self):
        with pytest.raises(ValueError):
            Dataflow(name="bad", fused=True, granularity=Granularity.R,
                     rows=0)

    def test_base_x_rejects_row_granularity(self):
        with pytest.raises(ValueError):
            base_x(Granularity.R)

    def test_flat_x_rejects_row_granularity(self):
        with pytest.raises(ValueError):
            flat_x(Granularity.R)


class TestCrossTile:
    def test_m_granularity_covers_everything(self):
        assert flat_x(Granularity.M).cross_tile(8, 4, 128) == (8, 4, 128)

    def test_b_granularity_single_batch(self):
        assert flat_x(Granularity.B).cross_tile(8, 4, 128) == (1, 4, 128)

    def test_b_granularity_with_tile(self):
        df = flat_x(Granularity.B, batch_tile=4)
        assert df.cross_tile(8, 4, 128) == (4, 4, 128)

    def test_h_granularity_single_head(self):
        assert flat_x(Granularity.H).cross_tile(8, 4, 128) == (1, 1, 128)

    def test_r_granularity_rows(self):
        assert flat_r(16).cross_tile(8, 4, 128) == (1, 1, 16)

    def test_r_clamped_to_seq(self):
        assert flat_r(512).cross_tile(8, 4, 128) == (1, 1, 128)

    def test_plain_base_is_one_big_pass(self):
        assert base().cross_tile(8, 4, 128) == (8, 4, 128)


class TestNames:
    def test_constructor_names(self):
        assert base().name == "Base"
        assert base_x(Granularity.M).name == "Base-M"
        assert flat_x(Granularity.H).name == "FLAT-H"
        assert flat_r(64).name == "FLAT-R64"

    def test_with_name(self):
        assert flat_r(8).with_name("custom").name == "custom"

    def test_default_stationarity(self):
        assert base().stationarity is Stationarity.OUTPUT
