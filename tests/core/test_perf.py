"""Unit tests for the analytical performance model."""

import pytest

from repro.core.dataflow import (
    Granularity,
    StagingPolicy,
    Stationarity,
    base,
    base_x,
    flat_r,
    flat_x,
)
from repro.core.perf import (
    PerfOptions,
    cost_fused_la,
    cost_la_pair,
    cost_operator,
    cost_scope,
)
from repro.ops.attention import Scope, operators_for_scope
from repro.ops.operator import OperatorKind


class TestBasicInvariants:
    @pytest.mark.parametrize(
        "dataflow",
        [base(), base_x(Granularity.M), base_x(Granularity.H),
         flat_x(Granularity.H), flat_r(64)],
    )
    def test_utilization_in_unit_interval(self, bert_512, edge_accel,
                                          dataflow):
        cost = cost_la_pair(bert_512, dataflow, edge_accel)
        assert 0.0 < cost.utilization <= 1.0

    def test_total_at_least_ideal(self, bert_512, edge_accel):
        cost = cost_la_pair(bert_512, flat_r(64), edge_accel)
        assert cost.total_cycles >= cost.ideal_cycles

    def test_ideal_cycles_are_macs_over_peak(self, bert_512, edge_accel):
        cost = cost_la_pair(bert_512, flat_r(64), edge_accel)
        c = bert_512
        macs = 2 * c.batch * c.heads * c.seq_q * c.seq_kv * c.d_head
        assert cost.ideal_cycles == pytest.approx(
            macs / edge_accel.peak_macs_per_cycle
        )

    def test_counts_nonnegative(self, bert_512, edge_accel):
        cost = cost_la_pair(bert_512, base(), edge_accel)
        c = cost.counts
        assert c.macs > 0 and c.dram_words > 0 and c.sg_words > 0

    def test_cost_fused_la_rejects_unfused(self, bert_512, edge_accel):
        with pytest.raises(ValueError):
            cost_fused_la(bert_512, base(), edge_accel)

    def test_cost_operator_rejects_fused(self, bert_512, edge_accel):
        ops = operators_for_scope(bert_512, Scope.BLOCK)
        with pytest.raises(ValueError):
            cost_operator(bert_512, ops[0], flat_r(8), edge_accel)


class TestPaperOrderings:
    """Qualitative claims of the paper, as assertions."""

    def test_flat_beats_base_on_la(self, bert_512, edge_accel):
        b = cost_la_pair(bert_512, base(), edge_accel)
        f = cost_la_pair(bert_512, flat_r(64), edge_accel)
        assert f.total_cycles < b.total_cycles

    def test_flat_traffic_below_base_traffic(self, bert_512, edge_accel):
        b = cost_la_pair(bert_512, base(), edge_accel)
        f = cost_la_pair(bert_512, flat_r(64), edge_accel)
        assert f.dram_bytes < b.dram_bytes

    def test_base_m_worse_than_base_at_small_buffer(self, bert_512,
                                                    edge_accel):
        small = edge_accel.with_scratchpad_bytes(128 * 1024)
        b = cost_la_pair(bert_512, base(), small)
        bm = cost_la_pair(bert_512, base_x(Granularity.M), small)
        assert bm.utilization < b.utilization

    def test_base_m_beats_base_at_huge_buffer(self, bert_512, edge_accel):
        huge = edge_accel.with_scratchpad_bytes(2 * 1024 ** 3)
        b = cost_la_pair(bert_512, base(), huge)
        bm = cost_la_pair(bert_512, base_x(Granularity.M), huge)
        assert bm.utilization > b.utilization

    def test_flat_r_near_cap_at_default_edge_buffer(self, bert_512,
                                                    edge_accel):
        f = cost_la_pair(bert_512, flat_r(64), edge_accel)
        assert f.utilization > 0.9

    def test_flat_holds_cap_across_sequence_lengths(self, edge_accel):
        from repro.models.configs import model_config

        utils = []
        for seq in (512, 4096, 65536):
            cfg = model_config("bert", seq=seq)
            # Size the buffer so the R-gran FLAT-tile fits, as the
            # paper's sweep does.
            accel = edge_accel.with_scratchpad_bytes(256 * 1024 * 1024)
            utils.append(cost_la_pair(cfg, flat_r(256), accel).utilization)
        assert all(u > 0.9 for u in utils)

    def test_unfused_pair_serializes_softmax(self, bert_512, edge_accel):
        """The baseline pays a softmax phase the fused dataflow hides."""
        b = cost_la_pair(bert_512, base(), edge_accel)
        f = cost_la_pair(bert_512, flat_r(64), edge_accel)
        assert b.softmax_cycles == pytest.approx(f.softmax_cycles)
        # ... but the baseline's total reflects the serial phase.
        assert b.total_cycles - b.compute_cycles > f.total_cycles - \
            f.compute_cycles


class TestStagingEffects:
    def test_disabling_k_staging_raises_traffic(self, bert_4k, edge_accel):
        accel = edge_accel.with_scratchpad_bytes(64 * 1024 * 1024)
        full = cost_la_pair(bert_4k, flat_r(128), accel)
        no_k = cost_la_pair(
            bert_4k,
            flat_r(128, staging=StagingPolicy(rhs=False)),
            accel,
        )
        assert no_k.dram_bytes > full.dram_bytes

    def test_disabling_intermediate_costs_round_trip(self, bert_512,
                                                     edge_accel):
        accel = edge_accel.with_scratchpad_bytes(64 * 1024 * 1024)
        full = cost_la_pair(bert_512, flat_r(64), accel)
        no_int = cost_la_pair(
            bert_512,
            flat_r(64, staging=StagingPolicy(intermediate=False)),
            accel,
        )
        c = bert_512
        logit_elems = c.batch * c.heads * c.seq_q * c.seq_kv
        extra = no_int.dram_bytes - full.dram_bytes
        assert extra >= 2 * logit_elems * accel.bytes_per_element * 0.9


class TestMonotonicity:
    def test_more_offchip_bandwidth_never_slower(self, bert_4k, edge_accel):
        cycles = []
        for gbps in (10, 50, 200, 1000):
            accel = edge_accel.with_offchip_bandwidth(gbps * 1e9)
            cycles.append(cost_la_pair(bert_4k, base(), accel).total_cycles)
        assert all(b <= a for a, b in zip(cycles, cycles[1:]))

    def test_bigger_buffer_never_slower_for_flat(self, bert_4k, edge_accel):
        cycles = []
        for mb in (1, 8, 64, 512):
            accel = edge_accel.with_scratchpad_bytes(mb * 1024 * 1024)
            cycles.append(
                cost_la_pair(bert_4k, flat_r(128), accel).total_cycles
            )
        assert all(b <= a * 1.001 for a, b in zip(cycles, cycles[1:]))


class TestStationarity:
    def test_weight_stationary_psum_overhead(self, bert_512, edge_accel):
        """Non-output stationarity spills partial sums on deep-k GEMMs."""
        out = cost_la_pair(
            bert_512, flat_r(64, stationarity=Stationarity.OUTPUT),
            edge_accel,
        )
        ws = cost_la_pair(
            bert_512, flat_r(64, stationarity=Stationarity.WEIGHT),
            edge_accel,
        )
        # A's k-dim is N: weight-stationary must not be cheaper.
        assert ws.dram_bytes >= out.dram_bytes


class TestScopeAggregation:
    def test_scope_cost_sums_operators(self, small_cfg, edge_accel):
        cost = cost_scope(small_cfg, Scope.BLOCK, edge_accel, flat_r(8))
        assert len(cost.operator_costs) == 7  # 6 ops with L+A fused as one
        assert cost.total_cycles == pytest.approx(
            sum(c.total_cycles for c in cost.operator_costs)
        )

    def test_model_scope_replicates_blocks(self, small_cfg, edge_accel):
        block = cost_scope(small_cfg, Scope.BLOCK, edge_accel, flat_r(8))
        model = cost_scope(small_cfg, Scope.MODEL, edge_accel, flat_r(8))
        assert model.total_cycles == pytest.approx(
            small_cfg.num_blocks * block.total_cycles
        )
        assert model.utilization == pytest.approx(block.utilization)

    def test_la_scope_is_single_fused_cost(self, small_cfg, edge_accel):
        cost = cost_scope(small_cfg, Scope.LA, edge_accel, flat_r(8))
        assert len(cost.operator_costs) == 1

    def test_la_scope_unfused_is_single_pair_cost(self, small_cfg,
                                                  edge_accel):
        cost = cost_scope(small_cfg, Scope.LA, edge_accel, base())
        assert len(cost.operator_costs) == 1

    def test_projections_unaffected_by_la_dataflow(self, small_cfg,
                                                   edge_accel):
        fused = cost_scope(small_cfg, Scope.BLOCK, edge_accel, flat_r(8))
        unfused = cost_scope(small_cfg, Scope.BLOCK, edge_accel, base())
        fused_proj = [
            c.total_cycles for c in fused.operator_costs
            if "query" in c.name or "ffn" in c.name
        ]
        unfused_proj = [
            c.total_cycles for c in unfused.operator_costs
            if "query" in c.name or "ffn" in c.name
        ]
        assert fused_proj == pytest.approx(unfused_proj)


class TestRigidVsFlexible:
    def test_flexible_mapping_at_least_as_fast(self, bert_512, edge_accel):
        flex = cost_la_pair(
            bert_512, base(), edge_accel,
            PerfOptions(flexible_mapping=True),
        )
        rigid = cost_la_pair(
            bert_512, base(), edge_accel,
            PerfOptions(flexible_mapping=False),
        )
        assert flex.total_cycles <= rigid.total_cycles

    def test_rigid_strands_pes_on_narrow_gemm(self, cloud_accel):
        """A d_head narrower than the array hurts rigid mapping."""
        from repro.models.configs import model_config

        cfg = model_config("t5", seq=2048)  # d_head = 64 < 256 columns
        flex = cost_la_pair(cfg, base(), cloud_accel,
                            PerfOptions(flexible_mapping=True))
        rigid = cost_la_pair(cfg, base(), cloud_accel,
                             PerfOptions(flexible_mapping=False))
        assert rigid.compute_cycles > 1.5 * flex.compute_cycles


class TestPerfOptionsValidation:
    def test_rejects_bad_reserve_fraction(self):
        with pytest.raises(ValueError):
            PerfOptions(l2_reserve_fraction=0.0)
        with pytest.raises(ValueError):
            PerfOptions(l2_reserve_fraction=1.0)

    def test_rejects_bad_warmup_credit(self):
        with pytest.raises(ValueError):
            PerfOptions(fused_warmup_credit=1.5)
