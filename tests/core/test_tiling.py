"""Unit tests for tile math and reuse analysis."""

import pytest

from repro.core.tiling import L2Tile, ceil_div, choose_l2_tile, reuse_passes


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_remainder(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 4)


class TestL2Tile:
    def test_footprint_double_buffered(self):
        t = L2Tile(4, 8, 16)
        single = 4 * 8 + 8 * 16 + 4 * 16
        assert t.footprint_elements() == 2 * single
        assert t.footprint_elements(double_buffered=False) == single

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            L2Tile(0, 1, 1)


class TestReusePasses:
    def test_full_tile_means_single_passes(self):
        p = reuse_passes(64, 32, 128, L2Tile(64, 32, 128))
        assert (p.lhs_passes, p.rhs_passes, p.out_passes) == (1, 1, 1)

    def test_picks_min_traffic_order(self):
        # lhs tiny, rhs huge: keeping rhs resident re-reads the tiny lhs.
        m, k, n = 8, 16, 4096
        tile = L2Tile(8, 16, 256)
        p = reuse_passes(m, k, n, tile)
        traffic = m * k * p.lhs_passes + k * n * p.rhs_passes
        # The alternative order would stream the big rhs ceil(m/tm)=1...
        # verify chosen traffic is the min of both explicit orders.
        alt1 = m * k * 1 + k * n * ceil_div(m, tile.tm)
        alt2 = m * k * ceil_div(n, tile.tn) + k * n * 1
        assert traffic == min(alt1, alt2)

    def test_partial_k_forces_psum_passes(self):
        p = reuse_passes(64, 128, 64, L2Tile(64, 32, 64))
        assert p.out_passes == 2 * 4 - 1

    def test_full_k_single_out_pass(self):
        p = reuse_passes(64, 128, 64, L2Tile(64, 128, 64))
        assert p.out_passes == 1


class TestChooseL2Tile:
    def test_whole_gemm_when_budget_ample(self):
        t = choose_l2_tile(64, 32, 64, budget_elements=10**9,
                           array_rows=32, array_cols=32)
        assert (t.tm, t.tk, t.tn) == (64, 32, 64)

    def test_fits_budget_when_constrained(self):
        budget = 8000  # above the minimal 32x32x32 tile (6144 elements)
        t = choose_l2_tile(512, 64, 512, budget, 32, 32)
        assert t.footprint_elements() <= budget

    def test_minimal_tile_fallback_when_budget_tiny(self):
        t = choose_l2_tile(512, 512, 512, budget_elements=10, array_rows=32,
                           array_cols=32)
        # Falls back to the array-shaped minimal tile.
        assert (t.tm, t.tn) == (32, 32)

    def test_bigger_budget_never_more_traffic(self):
        def traffic(budget):
            t = choose_l2_tile(1024, 128, 1024, budget, 32, 32)
            p = reuse_passes(1024, 128, 1024, t)
            return (
                1024 * 128 * p.lhs_passes
                + 128 * 1024 * p.rhs_passes
                + 1024 * 1024 * p.out_passes
            )

        budgets = [2_000, 20_000, 200_000, 2_000_000]
        values = [traffic(b) for b in budgets]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            choose_l2_tile(8, 8, 8, 0, 4, 4)

    def test_small_dims_clamped(self):
        t = choose_l2_tile(3, 5, 7, 10**6, 32, 32)
        assert (t.tm, t.tk, t.tn) == (3, 5, 7)
