"""Property-based tests (hypothesis) for the cost model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import edge
from repro.core.dataflow import Granularity, base, base_x, flat_r, flat_x
from repro.core.footprint import fused_la_footprint
from repro.core.perf import cost_la_pair
from repro.ops.attention import AttentionConfig

_EDGE = edge()


def _cfg(batch, heads, d_head, seq):
    return AttentionConfig(
        name="prop",
        batch=batch,
        heads=heads,
        d_model=heads * d_head,
        seq_q=seq,
        seq_kv=seq,
        d_ff=4 * heads * d_head,
    )


workloads = st.builds(
    _cfg,
    batch=st.integers(min_value=1, max_value=64),
    heads=st.integers(min_value=1, max_value=16),
    d_head=st.sampled_from([16, 32, 64, 128]),
    seq=st.sampled_from([64, 256, 1024, 4096]),
)

dataflows = st.one_of(
    st.just(base()),
    st.sampled_from([base_x(g) for g in
                     (Granularity.M, Granularity.B, Granularity.H)]),
    st.sampled_from([flat_x(g) for g in
                     (Granularity.M, Granularity.B, Granularity.H)]),
    st.builds(flat_r, st.sampled_from([1, 8, 64, 256])),
)


@settings(max_examples=60, deadline=None)
@given(cfg=workloads, dataflow=dataflows)
def test_utilization_always_in_unit_interval(cfg, dataflow):
    cost = cost_la_pair(cfg, dataflow, _EDGE)
    assert 0.0 < cost.utilization <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(cfg=workloads, dataflow=dataflows)
def test_costs_are_finite_and_nonnegative(cfg, dataflow):
    cost = cost_la_pair(cfg, dataflow, _EDGE)
    assert cost.total_cycles > 0
    assert cost.dram_bytes >= 0
    assert cost.sg_bytes >= 0
    assert cost.footprint_bytes >= 0
    assert cost.counts.macs > 0


@settings(max_examples=40, deadline=None)
@given(cfg=workloads, dataflow=dataflows)
def test_dram_traffic_at_least_compulsory_when_unstaged_inputs(cfg, dataflow):
    """Off-chip traffic can never be below each tensor moved once —
    unless everything live is staged, in which case the intermediate
    never moves at all."""
    cost = cost_la_pair(cfg, dataflow, _EDGE)
    e = _EDGE.bytes_per_element
    io_elements = (
        3 * cfg.batch * cfg.heads * cfg.seq_kv * cfg.d_head  # Q, K, V
        + cfg.batch * cfg.heads * cfg.seq_q * cfg.d_head  # out
    )
    assert cost.dram_bytes >= 0.99 * io_elements * e


@settings(max_examples=40, deadline=None)
@given(
    cfg=workloads,
    rows=st.sampled_from([1, 4, 16, 64]),
)
def test_r_gran_footprint_formula(cfg, rows):
    """The R-gran breakdown always matches Table 2's closed form."""
    fp = fused_la_footprint(cfg, flat_r(rows))
    r = min(rows, cfg.seq_q)
    expected = (
        4 * r * cfg.d_head + 4 * cfg.seq_kv * cfg.d_head + r * cfg.seq_kv
    )
    assert fp.total_elements == expected


@settings(max_examples=30, deadline=None)
@given(cfg=workloads, dataflow=dataflows)
def test_doubling_bandwidth_never_hurts(cfg, dataflow):
    slow = cost_la_pair(cfg, dataflow, _EDGE)
    fast = cost_la_pair(
        cfg, dataflow, _EDGE.with_offchip_bandwidth(100e9)
    )
    assert fast.total_cycles <= slow.total_cycles * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(cfg=workloads)
def test_fused_never_more_dram_than_unfused_all_staged(cfg):
    """With identical granularity and staging, fusing can only remove
    the softmax round trip, never add traffic."""
    for gran in (Granularity.B, Granularity.H):
        fused = cost_la_pair(cfg, flat_x(gran), _EDGE)
        unfused = cost_la_pair(cfg, base_x(gran), _EDGE)
        assert fused.dram_bytes <= unfused.dram_bytes * (1 + 1e-9)
