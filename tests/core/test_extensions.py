"""Tests for the pipelined-execution and online-softmax extensions."""

import pytest

from repro.arch.presets import cloud, edge
from repro.core.dataflow import Granularity, base, flat_r, flat_x
from repro.core.online import (
    OnlineDataflow,
    choose_online_tile,
    cost_online_la,
    online_footprint_elements,
)
from repro.core.perf import cost_la_pair
from repro.core.pipeline import (
    cost_fused_la_pipelined,
    pipelined_nonfused_penalty,
)
from repro.models.configs import model_config


class TestPipelinedExecution:
    """Paper section 5.1: interleaving beats spatial pipelining."""

    @pytest.mark.parametrize("seq", [512, 4096])
    def test_interleaved_never_slower(self, seq, edge_accel):
        cfg = model_config("bert", seq=seq)
        df = flat_r(64)
        interleaved = cost_la_pair(cfg, df, edge_accel)
        pipelined = cost_fused_la_pipelined(cfg, df, edge_accel)
        assert interleaved.total_cycles <= pipelined.total_cycles

    def test_pipelined_pays_fill_drain_bubble(self, edge_accel):
        cfg = model_config("bert", seq=512)
        df = flat_x(Granularity.H)
        interleaved = cost_la_pair(cfg, df, edge_accel)
        pipelined = cost_fused_la_pipelined(cfg, df, edge_accel)
        assert pipelined.compute_cycles > interleaved.compute_cycles

    def test_same_traffic_and_footprint(self, edge_accel):
        cfg = model_config("bert", seq=512)
        df = flat_r(64)
        interleaved = cost_la_pair(cfg, df, edge_accel)
        pipelined = cost_fused_la_pipelined(cfg, df, edge_accel)
        assert pipelined.dram_bytes == interleaved.dram_bytes
        assert pipelined.footprint_bytes == interleaved.footprint_bytes

    def test_rejects_unfused(self, bert_512, edge_accel):
        with pytest.raises(ValueError):
            cost_fused_la_pipelined(bert_512, base(), edge_accel)

    def test_nonfused_penalty_is_structural_2x(self, edge_accel):
        assert pipelined_nonfused_penalty(edge_accel) == 2.0


class TestOnlineDataflow:
    def test_footprint_independent_of_n(self):
        df = OnlineDataflow(rows=64, cols=64)
        assert online_footprint_elements(df, 64) == \
            online_footprint_elements(df, 64)
        # No N anywhere in the formula: the same tile serves any length.
        small = online_footprint_elements(df, 64)
        assert small == online_footprint_elements(df, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineDataflow(rows=0, cols=4)

    def test_choose_tile_fits_budget(self, edge_accel):
        cfg = model_config("bert", seq=65536)
        tile = choose_online_tile(cfg, edge_accel)
        footprint = online_footprint_elements(tile, cfg.d_head) * 2
        assert footprint <= edge_accel.sg_bytes

    def test_online_holds_cap_at_long_n_small_buffer(self, edge_accel):
        """The extension's headline: N-independent utilization."""
        utils = []
        for seq in (4096, 65536, 262144):
            cfg = model_config("bert", seq=seq)
            tile = choose_online_tile(cfg, edge_accel)
            utils.append(cost_online_la(cfg, tile, edge_accel).utilization)
        assert all(u > 0.9 for u in utils)
        assert max(utils) - min(utils) < 0.05

    def test_online_beats_flat_where_flat_spills(self, edge_accel):
        cfg = model_config("bert", seq=65536)
        tile = choose_online_tile(cfg, edge_accel)
        online = cost_online_la(cfg, tile, edge_accel)
        flat = cost_la_pair(cfg, flat_r(64), edge_accel)
        assert online.utilization > flat.utilization

    def test_flat_competitive_when_staging_fits(self, edge_accel):
        """At short N (fits), FLAT matches the online schedule: the
        extension buys nothing the paper's dataflow didn't already
        have."""
        cfg = model_config("bert", seq=512)
        tile = choose_online_tile(cfg, edge_accel)
        online = cost_online_la(cfg, tile, edge_accel)
        flat = cost_la_pair(cfg, flat_r(64), edge_accel)
        assert flat.utilization > 0.9
        assert abs(flat.utilization - online.utilization) < 0.1

    def test_online_traffic_linear_in_row_passes(self, edge_accel):
        cfg = model_config("bert", seq=16384)
        small_r = cost_online_la(cfg, OnlineDataflow(rows=64, cols=64),
                                 edge_accel)
        big_r = cost_online_la(cfg, OnlineDataflow(rows=512, cols=64),
                               edge_accel)
        # Bigger row tiles -> fewer K/V re-reads -> less traffic.
        assert big_r.dram_bytes < small_r.dram_bytes

    def test_online_never_quadratic_traffic(self, cloud_accel):
        cfg = model_config("xlm", seq=65536)
        tile = choose_online_tile(cfg, cloud_accel)
        cost = cost_online_la(cfg, tile, cloud_accel)
        e = cloud_accel.bytes_per_element
        logit_bytes = cfg.batch * cfg.heads * cfg.seq_q * cfg.seq_kv * e
        assert cost.dram_bytes < logit_bytes  # far below one N^2 pass
