"""Unit tests for the design-space exploration framework."""

import pytest

from repro.core.dataflow import Granularity
from repro.core.dse import (
    Objective,
    SearchSpace,
    enumerate_dataflows,
    search,
)
from repro.ops.attention import Scope


class TestEnumeration:
    def test_default_space_contains_all_families(self, bert_512, edge_accel):
        names = {
            df.name for df in enumerate_dataflows(bert_512, edge_accel)
        }
        assert "Base" in names
        assert any(n.startswith("Base-M") for n in names)
        assert any(n.startswith("FLAT-H") for n in names)
        assert any(n.startswith("FLAT-R") for n in names)

    def test_unfused_space_has_no_flat(self, bert_512, edge_accel):
        space = SearchSpace(allow_fused=False,
                            granularities=(Granularity.M, Granularity.B,
                                           Granularity.H))
        names = {
            df.name for df in enumerate_dataflows(bert_512, edge_accel,
                                                  space)
        }
        assert all(not n.startswith("FLAT") for n in names)

    def test_fused_only_space_has_no_base_x(self, bert_512, edge_accel):
        space = SearchSpace(
            allow_fused=True, allow_unfused=False,
            include_plain_base=False,
        )
        flows = list(enumerate_dataflows(bert_512, edge_accel, space))
        assert flows
        assert all(df.fused for df in flows)

    def test_row_choices_respected(self, bert_512, edge_accel):
        space = SearchSpace(
            granularities=(Granularity.R,), row_choices=(16, 32),
            allow_unfused=False, include_plain_base=False,
        )
        rows = {
            df.rows for df in enumerate_dataflows(bert_512, edge_accel,
                                                  space)
        }
        assert rows == {16, 32}

    def test_exhaustive_staging_grows_space(self, bert_512, edge_accel):
        lean = len(list(enumerate_dataflows(bert_512, edge_accel)))
        fat = len(list(enumerate_dataflows(
            bert_512, edge_accel, SearchSpace(exhaustive_staging=True)
        )))
        assert fat > lean

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(allow_fused=False, allow_unfused=False)


class TestSearch:
    def test_best_is_minimum_over_points(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel, scope=Scope.LA)
        best_cycles = result.best.cost.total_cycles
        assert all(
            p.cost.total_cycles >= best_cycles for p in result.points
        )

    def test_flat_opt_wins_on_la(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel, scope=Scope.LA)
        assert result.best.dataflow.fused

    def test_energy_objective_finds_min_energy(self, bert_512, edge_accel):
        result = search(
            bert_512, edge_accel, scope=Scope.LA, objective=Objective.ENERGY
        )
        best = result.best.energy.total_j
        assert all(p.energy.total_j >= best for p in result.points)

    def test_energy_opt_no_worse_energy_than_runtime_opt(
        self, bert_512, edge_accel
    ):
        rt = search(bert_512, edge_accel, objective=Objective.RUNTIME)
        en = search(bert_512, edge_accel, objective=Objective.ENERGY)
        assert en.best.energy.total_j <= rt.best.energy.total_j

    def test_edp_objective(self, bert_512, edge_accel):
        result = search(
            bert_512, edge_accel, objective=Objective.EDP
        )
        best = result.best
        key = best.energy.total_j * best.cost.total_cycles
        assert all(
            p.energy.total_j * p.cost.total_cycles >= key
            for p in result.points
        )

    def test_footprint_objective(self, bert_512, edge_accel):
        result = search(
            bert_512, edge_accel, objective=Objective.FOOTPRINT
        )
        best = result.best.footprint_bytes
        assert all(p.footprint_bytes >= best for p in result.points)


class TestParetoFront:
    def test_front_is_strictly_improving(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel)
        front = result.pareto_front()
        assert front
        for a, b in zip(front, front[1:]):
            assert a.footprint_bytes <= b.footprint_bytes
            assert a.utilization < b.utilization

    def test_front_dominates_all_points(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel)
        front = result.pareto_front()
        for p in result.points:
            dominated = any(
                f.footprint_bytes <= p.footprint_bytes
                and f.utilization >= p.utilization
                for f in front
            )
            assert dominated
