"""Unit tests for the design-space exploration framework."""

import pytest

from repro.core.dataflow import Granularity
from repro.core.dse import (
    Objective,
    SearchSpace,
    enumerate_dataflows,
    search,
)
from repro.ops.attention import Scope


class TestEnumeration:
    def test_default_space_contains_all_families(self, bert_512, edge_accel):
        names = {
            df.name for df in enumerate_dataflows(bert_512, edge_accel)
        }
        assert "Base" in names
        assert any(n.startswith("Base-M") for n in names)
        assert any(n.startswith("FLAT-H") for n in names)
        assert any(n.startswith("FLAT-R") for n in names)

    def test_unfused_space_has_no_flat(self, bert_512, edge_accel):
        space = SearchSpace(allow_fused=False,
                            granularities=(Granularity.M, Granularity.B,
                                           Granularity.H))
        names = {
            df.name for df in enumerate_dataflows(bert_512, edge_accel,
                                                  space)
        }
        assert all(not n.startswith("FLAT") for n in names)

    def test_fused_only_space_has_no_base_x(self, bert_512, edge_accel):
        space = SearchSpace(
            allow_fused=True, allow_unfused=False,
            include_plain_base=False,
        )
        flows = list(enumerate_dataflows(bert_512, edge_accel, space))
        assert flows
        assert all(df.fused for df in flows)

    def test_row_choices_respected(self, bert_512, edge_accel):
        space = SearchSpace(
            granularities=(Granularity.R,), row_choices=(16, 32),
            allow_unfused=False, include_plain_base=False,
        )
        rows = {
            df.rows for df in enumerate_dataflows(bert_512, edge_accel,
                                                  space)
        }
        assert rows == {16, 32}

    def test_exhaustive_staging_grows_space(self, bert_512, edge_accel):
        lean = len(list(enumerate_dataflows(bert_512, edge_accel)))
        fat = len(list(enumerate_dataflows(
            bert_512, edge_accel, SearchSpace(exhaustive_staging=True)
        )))
        assert fat > lean

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(allow_fused=False, allow_unfused=False)


class TestSearch:
    def test_best_is_minimum_over_points(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel, scope=Scope.LA)
        best_cycles = result.best.cost.total_cycles
        assert all(
            p.cost.total_cycles >= best_cycles for p in result.points
        )

    def test_flat_opt_wins_on_la(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel, scope=Scope.LA)
        assert result.best.dataflow.fused

    def test_energy_objective_finds_min_energy(self, bert_512, edge_accel):
        result = search(
            bert_512, edge_accel, scope=Scope.LA, objective=Objective.ENERGY
        )
        best = result.best.energy.total_j
        assert all(p.energy.total_j >= best for p in result.points)

    def test_energy_opt_no_worse_energy_than_runtime_opt(
        self, bert_512, edge_accel
    ):
        rt = search(bert_512, edge_accel, objective=Objective.RUNTIME)
        en = search(bert_512, edge_accel, objective=Objective.ENERGY)
        assert en.best.energy.total_j <= rt.best.energy.total_j

    def test_edp_objective(self, bert_512, edge_accel):
        result = search(
            bert_512, edge_accel, objective=Objective.EDP
        )
        best = result.best
        key = best.energy.total_j * best.cost.total_cycles
        assert all(
            p.energy.total_j * p.cost.total_cycles >= key
            for p in result.points
        )

    def test_footprint_objective(self, bert_512, edge_accel):
        result = search(
            bert_512, edge_accel, objective=Objective.FOOTPRINT
        )
        best = result.best.footprint_bytes
        assert all(p.footprint_bytes >= best for p in result.points)


class TestParetoFront:
    def test_front_is_strictly_improving(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel)
        front = result.pareto_front()
        assert front
        for a, b in zip(front, front[1:]):
            assert a.footprint_bytes <= b.footprint_bytes
            assert a.utilization < b.utilization

    def test_front_dominates_all_points(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel)
        front = result.pareto_front()
        for p in result.points:
            dominated = any(
                f.footprint_bytes <= p.footprint_bytes
                and f.utilization >= p.utilization
                for f in front
            )
            assert dominated

    def test_tie_handling_keeps_first_in_points_order(self, bert_512,
                                                      edge_accel):
        """Full ties resolve deterministically to the earlier point.

        Duplicating a front point (same cost, different name) must not
        change the front when the duplicate comes later, and must swap
        in the duplicate when it comes first — ``pareto_front`` is a
        pure, stable function of ``points`` order.
        """
        import dataclasses

        from repro.core.dse import DSEResult

        result = search(bert_512, edge_accel)
        front = result.pareto_front()
        dup = dataclasses.replace(
            front[0],
            dataflow=dataclasses.replace(front[0].dataflow, name="twin"),
        )
        appended = DSEResult(
            best=result.best, points=result.points + (dup,),
            objective=result.objective,
        )
        assert appended.pareto_front() == front
        prepended = DSEResult(
            best=result.best, points=(dup,) + result.points,
            objective=result.objective,
        )
        swapped = prepended.pareto_front()
        assert swapped[0].dataflow.name == "twin"
        assert swapped[1:] == front[1:]

    def test_front_is_deterministic(self, bert_512, edge_accel):
        result = search(bert_512, edge_accel)
        assert result.pareto_front() == result.pareto_front()


class TestSpaceClosedForms:
    """The enumeration's size is predictable in closed form."""

    def test_exhaustive_staging_is_full_2_to_the_5(self):
        from repro.core.dse import _staging_choices

        exhaustive = _staging_choices(True)
        assert len(exhaustive) == 2 ** 5 == 32
        assert len(set(exhaustive)) == 32
        # Exactly one member is all-disabled; enumerate_dataflows skips
        # it, so 31 policies reach the cost model.
        assert sum(1 for s in exhaustive if not s.any_enabled) == 1

    def test_default_staging_corners(self):
        from repro.core.dse import _staging_choices

        lean = _staging_choices(False)
        assert len(lean) == 7  # all-on, int-only, five single-offs
        assert all(s.any_enabled for s in lean)

    @pytest.mark.parametrize("exhaustive", [False, True])
    def test_enumeration_count_matches_closed_form(self, bert_512,
                                                   edge_accel, exhaustive):
        from repro.core.dse import _default_row_choices, _staging_choices

        space = SearchSpace(exhaustive_staging=exhaustive)
        stagings = sum(
            1 for s in _staging_choices(exhaustive) if s.any_enabled
        )
        rows = len(_default_row_choices(bert_512.seq_q))
        xy_grans = sum(
            1 for g in space.granularities if g is not Granularity.R
        )
        # plain Base + (Base-X and FLAT-X per staging) + FLAT-R grid
        predicted = 1 + 2 * xy_grans * stagings + rows * stagings
        actual = len(list(enumerate_dataflows(bert_512, edge_accel, space)))
        assert actual == predicted
        if exhaustive:
            assert actual == 1 + 2 * 3 * 31 + 6 * 31 == 373


class TestRowChoices:
    def test_ladder_depends_only_on_seq(self):
        from repro.core.dse import _default_row_choices

        rows = _default_row_choices(512)
        assert rows == (1, 4, 16, 64, 256, 512)
        assert _default_row_choices(512) == rows  # deterministic
        # Capped at 16384 regardless of sequence length.
        assert max(_default_row_choices(10 ** 6)) == 16384

    def test_ladder_covers_both_ends(self):
        from repro.core.dse import _default_row_choices

        for seq in (1, 7, 512, 4096, 65536):
            rows = _default_row_choices(seq)
            assert rows[0] == 1
            assert rows[-1] == min(seq, 16384)

    def test_ladder_has_no_duplicates(self):
        from repro.core.dse import _default_row_choices

        # Sequence lengths on the geometric ladder (powers of four, and
        # anything past the 16384 cap) used to get their final entry
        # appended twice, inflating the R-granularity grid.
        for seq in (1, 4, 64, 1024, 16384, 65536, 10 ** 6, 7, 100):
            rows = _default_row_choices(seq)
            assert len(rows) == len(set(rows)), seq
