"""Equivalence tests for the vectorized batch backend.

The contract under test is *bit-for-bit* agreement with the scalar
cost model: for every candidate in the enumerated grid,
:func:`repro.core.batch.evaluate_grid` must reproduce
``cost_scope``'s cycles, DRAM bytes, footprint and activity counts
exactly (``==``, not approx), and ``np.argmin`` over the score array
must land on the same index as the engine's first-strictly-less scan,
so tie-breaking survives vectorization.  The engine-level tests then
check that ``run_search`` with the backend on and off returns the
identical best point and that the new accounting fields behave.
"""

import random

import pytest

from repro.arch.presets import cloud, edge
from repro.core.batch import (
    BatchFallback,
    best_index,
    evaluate_grid,
)
from repro.core.dse import (
    Objective,
    SearchSpace,
    enumerate_dataflows,
    search,
)
from repro.core.engine import (
    EngineOptions,
    clear_evaluation_cache,
    default_batch,
    default_candidates,
    get_default_engine,
)
from repro.core.dataflow import Granularity
from repro.core.perf import cost_scope
from repro.energy.model import energy_report
from repro.ops.attention import AttentionConfig, Scope

# Same knobs as the scalar-engine suite, with only the backend toggled.
# BATCH keeps candidate generation on (the default front end); BATCH_EXH
# pins the exhaustive enumerate-then-batch path whose accounting some
# stats tests document.
SCALAR = EngineOptions(jobs=1, prune=True, cache_size=8192, batch=False)
BATCH = EngineOptions(jobs=1, prune=True, cache_size=8192, batch=True)
BATCH_EXH = EngineOptions(jobs=1, prune=True, cache_size=8192, batch=True,
                          candidates=False)

_SCOPES = (Scope.LA, Scope.BLOCK, Scope.MODEL)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Isolate every test from cross-test memoization."""
    clear_evaluation_cache()
    yield
    clear_evaluation_cache()


def _grid(cfg, accel, space=SearchSpace()):
    return list(enumerate_dataflows(cfg, accel, space))


def _scalar_scores(cfg, scope, accel, dataflows, objective):
    scores = []
    for df in dataflows:
        cost = cost_scope(cfg, scope, accel, df)
        energy = (
            energy_report(cost.counts)
            if objective in (Objective.ENERGY, Objective.EDP)
            else None
        )
        scores.append(objective.score(cost, energy))
    return scores


def _first_min_index(scores):
    best = 0
    for i in range(1, len(scores)):
        if scores[i] < scores[best]:
            best = i
    return best


def _assert_grid_matches_scalar(cfg, scope, accel, dataflows):
    grid = evaluate_grid(cfg, scope, accel, dataflows)
    assert len(grid) == len(dataflows)
    for i, df in enumerate(dataflows):
        cost = cost_scope(cfg, scope, accel, df)
        label = (df.name, df.staging, scope)
        assert float(grid.total_cycles[i]) == float(cost.total_cycles), label
        assert float(grid.dram_bytes[i]) == float(cost.dram_bytes), label
        assert int(grid.footprint_bytes[i]) == cost.max_footprint_bytes, label
        counts = cost.counts
        assert float(grid.macs[i]) == counts.macs, label
        assert float(grid.sl_words[i]) == counts.sl_words, label
        assert float(grid.sg_words[i]) == counts.sg_words, label
        assert float(grid.dram_words[i]) == counts.dram_words, label
        assert float(grid.sfu_ops[i]) == counts.sfu_ops, label
    return grid


class TestGridEquivalence:
    """evaluate_grid vs a per-candidate cost_scope loop, exact equality."""

    @pytest.mark.parametrize("scope", _SCOPES)
    def test_small_cfg_every_scope(self, small_cfg, edge_accel, scope):
        _assert_grid_matches_scalar(
            small_cfg, scope, edge_accel, _grid(small_cfg, edge_accel)
        )

    def test_bert512_edge_exhaustive_staging(self, bert_512, edge_accel):
        space = SearchSpace(exhaustive_staging=True)
        _assert_grid_matches_scalar(
            bert_512, Scope.BLOCK, edge_accel,
            _grid(bert_512, edge_accel, space),
        )

    def test_bert4k_cloud(self, bert_4k, cloud_accel):
        _assert_grid_matches_scalar(
            bert_4k, Scope.LA, cloud_accel, _grid(bert_4k, cloud_accel)
        )

    @pytest.mark.parametrize("platform", ["edge", "cloud"])
    def test_seeded_random_workloads(self, platform):
        """Seeded sweep over random shapes x scopes x sequence lengths."""
        rng = random.Random(0x46AC1 + (platform == "cloud"))
        accel = edge() if platform == "edge" else cloud()
        for _ in range(4):
            heads = rng.choice([2, 4, 8])
            d_model = heads * rng.choice([32, 64])
            seq = rng.choice([16, 48, 160, 512])
            cfg = AttentionConfig(
                name=f"rand-{platform}", batch=rng.choice([1, 2, 4]),
                heads=heads, d_model=d_model, seq_q=seq, seq_kv=seq,
                d_ff=4 * d_model, num_blocks=rng.choice([1, 3]),
            )
            scope = rng.choice(_SCOPES)
            _assert_grid_matches_scalar(
                cfg, scope, accel, _grid(cfg, accel)
            )

    def test_empty_grid_rejected(self, small_cfg, edge_accel):
        with pytest.raises(ValueError):
            evaluate_grid(small_cfg, Scope.LA, edge_accel, [])


class TestObjectiveScores:
    """Score arrays and argmin tie-breaking vs the scalar scan."""

    @pytest.mark.parametrize("objective", list(Objective))
    def test_scores_and_argmin_match_scalar(self, bert_512, edge_accel,
                                            objective):
        dataflows = _grid(bert_512, edge_accel)
        grid = evaluate_grid(bert_512, Scope.LA, edge_accel, dataflows)
        scores = grid.objective_scores(objective)
        expected = _scalar_scores(
            bert_512, Scope.LA, edge_accel, dataflows, objective
        )
        assert [float(s) for s in scores] == expected
        assert best_index(scores) == _first_min_index(expected)

    @pytest.mark.parametrize("scope", _SCOPES)
    def test_argmin_over_scopes(self, small_cfg, cloud_accel, scope):
        dataflows = _grid(small_cfg, cloud_accel)
        grid = evaluate_grid(small_cfg, scope, cloud_accel, dataflows)
        for objective in Objective:
            expected = _scalar_scores(
                small_cfg, scope, cloud_accel, dataflows, objective
            )
            assert best_index(grid.objective_scores(objective)) == (
                _first_min_index(expected)
            ), (scope, objective)


class TestEngineEquivalence:
    """run_search with the backend on vs off: identical winner."""

    @pytest.mark.parametrize("objective", list(Objective))
    def test_every_objective(self, bert_512, edge_accel, objective):
        scalar = search(bert_512, edge_accel, scope=Scope.LA,
                        objective=objective, engine=SCALAR,
                        retain_points=False)
        clear_evaluation_cache()
        fast = search(bert_512, edge_accel, scope=Scope.LA,
                      objective=objective, engine=BATCH,
                      retain_points=False)
        assert fast.best.dataflow == scalar.best.dataflow
        assert objective.score(fast.best.cost, fast.best.energy) == (
            objective.score(scalar.best.cost, scalar.best.energy)
        )
        assert fast.best.cost.total_cycles == scalar.best.cost.total_cycles
        assert fast.best.cost.dram_bytes == scalar.best.cost.dram_bytes

    @pytest.mark.parametrize("scope", _SCOPES)
    def test_every_scope(self, small_cfg, cloud_accel, scope):
        scalar = search(small_cfg, cloud_accel, scope=scope, engine=SCALAR,
                        retain_points=False)
        clear_evaluation_cache()
        fast = search(small_cfg, cloud_accel, scope=scope, engine=BATCH,
                      retain_points=False)
        assert fast.best.dataflow == scalar.best.dataflow
        assert fast.best.cost.total_cycles == scalar.best.cost.total_cycles

    def test_exhaustive_staging_grid(self, bert_4k, edge_accel):
        space = SearchSpace(exhaustive_staging=True)
        scalar = search(bert_4k, edge_accel, scope=Scope.LA, space=space,
                        engine=SCALAR, retain_points=False)
        clear_evaluation_cache()
        fast = search(bert_4k, edge_accel, scope=Scope.LA, space=space,
                      engine=BATCH, retain_points=False)
        assert fast.best.dataflow == scalar.best.dataflow
        assert fast.best.cost.total_cycles == scalar.best.cost.total_cycles


class TestStats:
    def test_cold_search_accounting(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, engine=BATCH_EXH,
                     retain_points=False)
        s = res.stats
        # Every candidate went through the array path; the winner alone
        # got the scalar breakdown, the losers are booked as pruned.
        assert s.batch_evaluations == s.enumerated
        assert s.evaluated == 1
        assert s.enumerated == s.cache_hits + s.pruned + s.evaluated

    def test_cold_candidate_accounting(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, engine=BATCH,
                     retain_points=False)
        s = res.stats
        # The generated front end never expands skipped families, so
        # fewer candidates hit the array than were (virtually)
        # enumerated; the ledger invariant still balances.
        assert s.candidates_generated + s.candidates_skipped >= s.enumerated
        assert s.batch_evaluations < s.enumerated
        assert s.enumerated == s.cache_hits + s.pruned + s.evaluated

    def test_memo_hit_skips_the_grid(self, small_cfg, edge_accel):
        first = search(small_cfg, edge_accel, engine=BATCH,
                       retain_points=False)
        second = search(small_cfg, edge_accel, engine=BATCH,
                        retain_points=False)
        assert first.best.dataflow == second.best.dataflow
        assert second.stats.batch_evaluations == 0
        assert second.stats.evaluated == 0
        assert second.stats.cache_hits == second.stats.enumerated

    def test_scalar_engine_never_batches(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, engine=SCALAR,
                     retain_points=False)
        assert res.stats.batch_evaluations == 0

    def test_retain_points_stays_scalar(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, engine=BATCH)  # retain default
        assert res.stats.batch_evaluations == 0
        assert len(res.points) == res.stats.enumerated
        assert all(p.energy is not None for p in res.points)

    def test_validation(self):
        from repro.core.engine import SearchStats

        with pytest.raises(ValueError):
            SearchStats(enumerated=1, evaluated=1, pruned=0, cache_hits=0,
                        wall_time_s=0.0, jobs=1, batch_evaluations=-1)


class TestFallback:
    """Workloads beyond the float64-exactness guard take the scalar path."""

    # 64 * 16 * 262144^2 * 64 = 2^52 MACs in the logit operator alone,
    # past the 2^50 static ceiling.
    _HUGE = AttentionConfig(
        name="huge", batch=64, heads=16, d_model=1024,
        seq_q=262144, seq_kv=262144, d_ff=4096, num_blocks=1,
    )
    # A narrow space keeps the scalar reference sweep fast.
    _SPACE = SearchSpace(
        allow_unfused=False, granularities=(Granularity.R,),
        row_choices=(64,), include_plain_base=False,
    )

    def test_grid_raises(self, edge_accel):
        dataflows = _grid(self._HUGE, edge_accel, self._SPACE)
        with pytest.raises(BatchFallback):
            evaluate_grid(self._HUGE, Scope.LA, edge_accel, dataflows)

    def test_engine_falls_back_to_scalar(self, edge_accel):
        scalar = search(self._HUGE, edge_accel, scope=Scope.LA,
                        space=self._SPACE, engine=SCALAR,
                        retain_points=False)
        clear_evaluation_cache()
        fast = search(self._HUGE, edge_accel, scope=Scope.LA,
                      space=self._SPACE, engine=BATCH,
                      retain_points=False)
        assert fast.best.dataflow == scalar.best.dataflow
        assert fast.best.cost.total_cycles == scalar.best.cost.total_cycles
        assert fast.stats.batch_evaluations == 0


class TestDefaultBatch:
    def test_contextmanager_toggles_and_restores(self):
        before = get_default_engine()
        with default_batch(False):
            assert get_default_engine().batch is False
        assert get_default_engine() == before
        with default_batch(None):  # None leaves the default untouched
            assert get_default_engine() == before

    def test_context_reaches_search(self, small_cfg, edge_accel):
        with default_batch(False):
            res = search(small_cfg, edge_accel, retain_points=False)
        assert res.stats.batch_evaluations == 0
        clear_evaluation_cache()
        with default_batch(True), default_candidates(False):
            res = search(small_cfg, edge_accel, retain_points=False)
        assert res.stats.batch_evaluations == res.stats.enumerated
