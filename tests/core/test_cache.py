"""Tests for the persistent cross-run DSE evaluation cache."""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading

import pytest

from repro.arch.presets import edge
from repro.core import cache as cache_mod
from repro.core.cache import (
    CacheStats,
    PersistentCache,
    cost_model_fingerprint,
    default_cache_dir,
    get_default_cache,
    open_cache,
    resolve_cache_dir,
    set_default_cache_dir,
)
from repro.core.dse import Objective, search
from repro.core.engine import clear_evaluation_cache, evaluate_cost
from repro.core.dataflow import flat_r
from repro.core.perf import cost_scope
from repro.models.configs import model_config
from repro.ops.attention import Scope


@pytest.fixture
def cache(tmp_path):
    return PersistentCache(tmp_path / "cache")


def _entry_file(cache: PersistentCache, key) -> os.PathLike:
    path, _ = cache._entry_path(key)
    return path


class TestRoundTrip:
    def test_get_returns_stored_value(self, cache):
        key = ("workload", 1, 2.5)
        cache.put(key, {"cycles": 123.0})
        assert cache.get(key) == {"cycles": 123.0}
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_miss_counts(self, cache):
        assert cache.get(("absent",)) is None
        assert cache.stats.misses == 1

    def test_scope_cost_round_trips_exactly(self, cache, bert_512):
        cost = cost_scope(bert_512, Scope.LA, edge(), flat_r(64))
        cache.put(("k",), cost)
        restored = cache.get(("k",))
        assert restored == cost
        assert restored.total_cycles == cost.total_cycles

    def test_overwrite_is_last_writer_wins(self, cache):
        cache.put(("k",), 1)
        cache.put(("k",), 2)
        assert cache.get(("k",)) == 2
        assert cache.entry_count() == 1


class TestCorruption:
    """Corrupted or truncated entries are skipped — counted, not fatal.

    Regression coverage for the miss-accounting bug: the corruption
    paths used to bump only ``corrupt``, so ``hits + misses`` drifted
    below ``lookups``.  Every corruption is a miss *and* a corrupt.
    """

    def test_truncated_entry_is_a_miss(self, cache):
        key = ("k", 1)
        cache.put(key, "value")
        path = _entry_file(cache, key)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1, "a corrupt entry must count as a miss"
        assert not path.exists(), "corrupt entry should be discarded"

    def test_garbage_bytes_are_a_miss(self, cache):
        key = ("k", 2)
        cache.put(key, "value")
        _entry_file(cache, key).write_bytes(b"not a pickle at all")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_wrong_header_is_a_miss(self, cache):
        key = ("k", 3)
        cache.put(key, "value")
        _entry_file(cache, key).write_bytes(
            pickle.dumps(("some-other-schema", repr(key), "value"))
        )
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_cache_recovers_after_corruption(self, cache):
        key = ("k", 4)
        cache.put(key, "old")
        _entry_file(cache, key).write_bytes(b"\x00")
        assert cache.get(key) is None
        cache.put(key, "new")
        assert cache.get(key) == "new"

    def test_accounting_invariant_survives_corruption(self, cache):
        """hits + misses == lookups through hits, misses and corruption."""
        cache.put(("ok",), 1)
        assert cache.get(("ok",)) == 1  # hit
        assert cache.get(("absent",)) is None  # plain miss
        cache.put(("bad",), 2)
        _entry_file(cache, ("bad",)).write_bytes(b"garbage")
        assert cache.get(("bad",)) is None  # corrupt miss
        stats = cache.stats
        assert stats.lookups == 3
        assert stats.hits + stats.misses == stats.lookups
        assert stats.hits == 1 and stats.misses == 2 and stats.corrupt == 1


class TestFingerprintInvalidation:
    def test_fingerprint_bump_invalidates_stale_hits(self, tmp_path):
        old = PersistentCache(tmp_path, fingerprint="a" * 64)
        old.put(("k",), "stale")
        bumped = PersistentCache(tmp_path, fingerprint="b" * 64)
        assert bumped.get(("k",)) is None, "stale generation must not hit"
        bumped.put(("k",), "fresh")
        assert bumped.get(("k",)) == "fresh"
        assert old.get(("k",)) == "stale", "generations are independent"

    def test_evict_sweeps_stale_generations(self, tmp_path):
        old = PersistentCache(tmp_path, fingerprint="a" * 64)
        for i in range(5):
            old.put(("k", i), i)
        bumped = PersistentCache(tmp_path, fingerprint="b" * 64)
        removed = bumped.evict()
        assert removed == 5
        assert old.entry_count() == 0
        assert bumped.stats.evictions == 5

    def test_schema_version_feeds_fingerprint(self, monkeypatch):
        before = cost_model_fingerprint()
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", 999)
        assert cost_model_fingerprint() != before


class TestEviction:
    def test_max_entries_enforced_lru(self, tmp_path):
        cache = PersistentCache(tmp_path, max_entries=3, evict_interval=1000)
        for i in range(5):
            cache.put(("k", i), i)
            os.utime(_entry_file(cache, ("k", i)), (i, i))
        # Refresh entry 0 so it becomes the most recently used.
        now = 100.0
        os.utime(_entry_file(cache, ("k", 0)), (now, now))
        cache.evict()
        assert cache.entry_count() == 3
        assert cache.get(("k", 0)) == 0, "recently used entry survives"
        assert cache.get(("k", 1)) is None

    def test_put_triggers_periodic_eviction(self, tmp_path):
        cache = PersistentCache(tmp_path, max_entries=2, evict_interval=4)
        for i in range(4):
            cache.put(("k", i), i)
        assert cache.entry_count() == 2

    def test_clear_empties_live_generation(self, cache):
        cache.put(("k",), 1)
        cache.clear()
        assert cache.entry_count() == 0
        assert cache.get(("k",)) is None


def _hammer(root: str, fingerprint: str, offset: int, count: int) -> None:
    cache = PersistentCache(root, fingerprint=fingerprint)
    for i in range(count):
        # Overlapping range: both writers fight over half the keys.
        cache.put(("shared", (offset + i) % (count * 3 // 2)), i)


class TestConcurrency:
    def test_two_processes_do_not_lose_or_mangle_entries(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        fingerprint = "c" * 64
        count = 60
        procs = [
            ctx.Process(
                target=_hammer,
                args=(str(tmp_path), fingerprint, off, count),
            )
            for off in (0, count // 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        reader = PersistentCache(tmp_path, fingerprint=fingerprint)
        written = set(range(count * 3 // 2))
        values = {k: reader.get(("shared", k)) for k in written}
        assert all(v is not None for v in values.values()), (
            "concurrent writers lost entries"
        )
        assert reader.stats.corrupt == 0, "concurrent writers mangled entries"


class TestThreadSafety:
    """One cache instance shared across threads — the serving daemon's
    shape: request handlers and the evaluator hit the same
    ``PersistentCache`` (and the same engine LRU) concurrently.
    """

    def test_readers_and_writers_keep_accounting_exact(self, tmp_path):
        cache = PersistentCache(tmp_path)
        keys = [("shared", i) for i in range(16)]
        for key in keys:
            cache.put(key, {"seed": key[1]})
        reader_threads, reader_rounds = 6, 150
        writer_threads, writer_rounds = 2, 100
        errors = []

        def read(rounds):
            try:
                for index in range(rounds):
                    value = cache.get(keys[index % len(keys)])
                    assert value is not None, "reader saw a torn entry"
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def write(rounds):
            try:
                for index in range(rounds):
                    cache.put(keys[index % len(keys)], {"seed": index})
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=read, args=(reader_rounds,))
            for _ in range(reader_threads)
        ] + [
            threading.Thread(target=write, args=(writer_rounds,))
            for _ in range(writer_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        stats = cache.stats
        assert stats.corrupt == 0
        assert stats.misses == 0
        assert stats.lookups == stats.hits + stats.misses
        assert stats.lookups == reader_threads * reader_rounds
        assert stats.writes == (
            len(keys) + writer_threads * writer_rounds
        )
        assert cache.entry_count() == len(keys)

    def test_concurrent_engine_evaluations_agree_and_balance(
        self, tmp_path, bert_512
    ):
        """Racing threads through ``evaluate_cost`` on one --cache-dir:
        every thread gets the same answer and the cache accounting
        invariant survives the races (hits + misses == lookups)."""
        accel = edge()
        workers = 8
        results = [None] * workers
        errors = []

        def work(index):
            try:
                results[index] = evaluate_cost(
                    bert_512, Scope.LA, accel, flat_r(64)
                )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with default_cache_dir(str(tmp_path)):
            clear_evaluation_cache()
            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            pcache = get_default_cache()
            assert pcache is not None
            stats = pcache.stats
        assert not errors, errors
        assert all(r is not None for r in results)
        assert all(r == results[0] for r in results[1:])
        assert stats.corrupt == 0
        assert stats.lookups == stats.hits + stats.misses


class TestDefaultPlumbing:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setattr(cache_mod, "_default_dir", None)
        assert resolve_cache_dir() is None
        assert get_default_cache() is None

    def test_env_var_enables(self, monkeypatch, tmp_path):
        monkeypatch.setattr(cache_mod, "_default_dir", None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = get_default_cache()
        assert cache is not None
        assert cache.root == tmp_path

    def test_explicit_empty_string_overrides_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with default_cache_dir(""):
            assert get_default_cache() is None

    def test_context_manager_restores(self, tmp_path):
        previous = set_default_cache_dir(None)
        try:
            with default_cache_dir(str(tmp_path)):
                assert resolve_cache_dir() == str(tmp_path)
            assert resolve_cache_dir() is None
        finally:
            set_default_cache_dir(previous)

    def test_open_cache_is_per_process_singleton(self, tmp_path):
        assert open_cache(tmp_path) is open_cache(tmp_path)


class TestEngineIntegration:
    def test_second_search_hits_disk(self, tmp_path, bert_512):
        accel = edge()
        with default_cache_dir(str(tmp_path)):
            clear_evaluation_cache()
            cold = search(bert_512, accel, objective=Objective.RUNTIME,
                          retain_points=False)
            assert cold.stats.evaluated > 0
            assert cold.stats.disk_hits == 0
            # New process simulated by dropping the in-memory LRU.
            clear_evaluation_cache()
            warm = search(bert_512, accel, objective=Objective.RUNTIME,
                          retain_points=False)
        assert warm.stats.evaluated == 0
        assert warm.stats.disk_hits > 0
        assert warm.stats.disk_hits <= warm.stats.cache_hits
        assert warm.best.dataflow == cold.best.dataflow
        assert warm.best.cost.total_cycles == cold.best.cost.total_cycles

    def test_evaluate_cost_round_trips_through_disk(self, tmp_path,
                                                    small_cfg):
        accel = edge()
        dataflow = flat_r(8)
        with default_cache_dir(str(tmp_path)):
            clear_evaluation_cache()
            first = evaluate_cost(small_cfg, Scope.LA, accel, dataflow)
            clear_evaluation_cache()
            second = evaluate_cost(small_cfg, Scope.LA, accel, dataflow)
            pcache = get_default_cache()
        assert first == second
        assert pcache.stats.hits >= 1
        assert second == cost_scope(small_cfg, Scope.LA, accel, dataflow)

    def test_stats_deltas_subtract(self):
        a = CacheStats(lookups=8, hits=5, misses=3, writes=2, corrupt=1,
                       evictions=0)
        b = CacheStats(lookups=2, hits=1, misses=1, writes=1, corrupt=0,
                       evictions=0)
        assert (a - b) == CacheStats(lookups=6, hits=4, misses=2, writes=1,
                                     corrupt=1, evictions=0)
