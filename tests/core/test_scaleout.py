"""Tests for the two-level multi-chip scale-out DSE.

Three bars, mirroring the candidate layer's contract one level up:

* **Model structure** — partition enumeration covers exactly the
  feasible factorizations, sharding ceil-divides the right axes, and
  the induced collectives match the sharding model's closed forms.
* **Grid fidelity** — the vectorized outer grid must reproduce the
  scalar fabric functions *bit for bit*, and its bounds must be
  admissible: never above the true (inner search + fabric) total of
  any outer point, probed over randomized (hypothesis) workloads.
* **Equivalence** — branch-and-bound pruning, memoization and
  warm-starting must be invisible in the result: the hierarchical
  path returns the exhaustive reference's winner exactly.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.fabric import (
    CollectiveKind,
    CollectiveSchedule,
    FabricSpec,
    collective_floor_s,
    collective_time_s,
)
from repro.arch.presets import edge
from repro.core.dse import Objective, search
from repro.core.engine import clear_evaluation_cache, default_warm_start
from repro.core.scaleout import (
    DEFAULT_SCHEDULES,
    Partition,
    ScaleoutSystem,
    default_scaleout_exhaustive,
    enumerate_partitions,
    evaluate_partition_grid,
    induced_collectives,
    reset_scaleout_totals,
    scaleout_totals,
    search_scaleout,
    shard_config,
    sweep_chip_counts,
)
from repro.ops.attention import AttentionConfig, Scope


def _cfg(batch=4, heads=4, d_head=16, seq=128):
    return AttentionConfig(
        name="scale", batch=batch, heads=heads, d_model=heads * d_head,
        seq_q=seq, seq_kv=seq, d_ff=4 * heads * d_head,
    )


def _system(**kwargs):
    return ScaleoutSystem(chip=edge(), **kwargs)


workloads = st.builds(
    _cfg,
    batch=st.integers(min_value=1, max_value=8),
    heads=st.sampled_from([2, 4, 8]),
    d_head=st.sampled_from([16, 32]),
    seq=st.sampled_from([64, 128]),
)
chip_counts = st.sampled_from([2, 4, 6, 8, 12])


class TestPartitions:
    def test_ways_multiply_to_chips(self):
        for part in enumerate_partitions(_cfg(), 8):
            assert (
                part.batch_ways * part.head_ways * part.seq_ways
                == part.chips == 8
            )

    def test_infeasible_cuts_excluded(self):
        cfg = _cfg(batch=2, heads=2, seq=128)
        for part in enumerate_partitions(cfg, 8):
            assert part.batch_ways <= cfg.batch
            assert part.head_ways <= cfg.heads
            assert part.seq_ways <= cfg.seq_q

    def test_single_chip_is_the_identity_partition(self):
        (part,) = enumerate_partitions(_cfg(), 1)
        assert part.label == "b1-h1-s1"

    def test_order_is_batch_then_head_ascending(self):
        parts = enumerate_partitions(_cfg(), 4)
        keys = [(p.batch_ways, p.head_ways) for p in parts]
        assert keys == sorted(keys)

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(chips=4, batch_ways=2, head_ways=1, seq_ways=1)
        with pytest.raises(ValueError):
            Partition(chips=4, batch_ways=0, head_ways=1, seq_ways=4)
        with pytest.raises(ValueError):
            enumerate_partitions(_cfg(), 0)


class TestShardConfig:
    def test_head_shard_keeps_d_head(self):
        cfg = _cfg(heads=4, d_head=16)
        shard = shard_config(cfg, Partition(2, 1, 2, 1))
        assert shard.heads == 2
        assert shard.d_model == 2 * 16
        assert shard.d_ff == cfg.d_ff // 2

    def test_seq_shard_cuts_q_only(self):
        cfg = _cfg(seq=128)
        shard = shard_config(cfg, Partition(4, 1, 1, 4))
        assert shard.seq_q == 32
        assert shard.seq_kv == cfg.seq_kv

    def test_ceil_division(self):
        cfg = _cfg(batch=3)
        shard = shard_config(cfg, Partition(2, 2, 1, 1))
        assert shard.batch == 2  # the largest shard sets the pace

    def test_label_lands_in_the_name(self):
        shard = shard_config(_cfg(), Partition(4, 2, 2, 1))
        assert shard.name.endswith("/b2-h2-s1")


class TestInducedCollectives:
    def test_pure_batch_is_free(self):
        assert induced_collectives(_cfg(), Partition(4, 4, 1, 1), 2) == ()

    def test_seq_shard_gathers_kv(self):
        cfg = _cfg(batch=2, heads=4, d_head=16, seq=128)
        (coll,) = induced_collectives(cfg, Partition(4, 1, 1, 4), 2)
        assert coll.kind is CollectiveKind.ALL_GATHER
        assert coll.group == 4
        # 2 tensors x B x H x Nkv x d_head x bytes (un-cut shard axes).
        assert coll.payload_bytes == 2 * 2 * 4 * 128 * 16 * 2

    def test_head_shard_reduces_output(self):
        cfg = _cfg(batch=2, heads=4, d_head=16, seq=128)
        (coll,) = induced_collectives(cfg, Partition(2, 1, 2, 1), 2)
        assert coll.kind is CollectiveKind.ALL_REDUCE
        assert coll.group == 2
        # B x Nq x d_model x bytes, over the full (replicated) d_model.
        assert coll.payload_bytes == 2 * 128 * cfg.d_model * 2

    def test_mixed_partition_induces_both(self):
        kinds = {
            c.kind
            for c in induced_collectives(_cfg(), Partition(4, 1, 2, 2), 2)
        }
        assert kinds == {
            CollectiveKind.ALL_GATHER, CollectiveKind.ALL_REDUCE
        }


class TestSystem:
    def test_unshared_chip_view_is_the_chip(self):
        assert _system().chip_view() == edge()

    def test_shared_channel_derates_offchip(self):
        system = _system(chips_per_channel=4, channel_contention=1.25)
        view = system.chip_view()
        assert view.offchip.bandwidth_bytes_per_sec == pytest.approx(
            edge().offchip.bandwidth_bytes_per_sec / (4 * 1.25)
        )

    def test_fingerprint_is_name_blind(self):
        from dataclasses import replace

        renamed = ScaleoutSystem(chip=replace(edge(), name="other"))
        assert _system().fingerprint() == renamed.fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError):
            _system(chips_per_channel=0)
        with pytest.raises(ValueError):
            _system(channel_contention=0.5)


class TestGridFidelity:
    """The vectorized grid reproduces the scalar fabric bit for bit."""

    def _scalar_fabric_s(self, cfg, system, part, schedule):
        return sum(
            collective_time_s(
                system.fabric, schedule, coll.kind, coll.group,
                coll.payload_bytes,
            )
            for coll in induced_collectives(
                cfg, part, system.chip.bytes_per_element
            )
        )

    def test_fabric_cycles_bit_identical_to_scalar(self):
        cfg = _cfg(batch=8, heads=8, seq=128)
        system = _system(fabric=FabricSpec(hop_latency_s=1e-6))
        grid = evaluate_partition_grid(cfg, system, 8)
        freq = system.chip.frequency_hz
        for i, part in enumerate(grid.partitions):
            for j, schedule in enumerate(grid.schedules):
                expected = (
                    self._scalar_fabric_s(cfg, system, part, schedule)
                    * freq
                )
                assert grid.fabric_cycles[i, j] == expected, (part, schedule)

    def test_fabric_floor_bit_identical_to_scalar(self):
        cfg = _cfg(batch=8, heads=8, seq=128)
        system = _system()
        grid = evaluate_partition_grid(cfg, system, 8)
        freq = system.chip.frequency_hz
        for i, part in enumerate(grid.partitions):
            expected = sum(
                collective_floor_s(
                    system.fabric, coll.kind, coll.group, coll.payload_bytes
                )
                for coll in induced_collectives(
                    cfg, part, system.chip.bytes_per_element
                )
            ) * freq
            assert grid.fabric_floor_cycles[i] == expected, part

    def test_fabric_floor_never_above_any_schedule(self):
        grid = evaluate_partition_grid(_cfg(batch=8, heads=8), _system(), 8)
        for j in range(len(grid.schedules)):
            assert (
                grid.fabric_floor_cycles <= grid.fabric_cycles[:, j]
            ).all()

    def test_bound_is_floor_plus_fabric(self):
        grid = evaluate_partition_grid(_cfg(), _system(), 4)
        assert (
            grid.bound_cycles
            == grid.compute_floor_cycles[:, None] + grid.fabric_cycles
        ).all()

    def test_rejects_empty_spaces(self):
        with pytest.raises(ValueError):
            evaluate_partition_grid(_cfg(batch=1, heads=1, seq=1),
                                    _system(), 64)
        with pytest.raises(ValueError):
            evaluate_partition_grid(_cfg(), _system(), 4, schedules=())


class TestBoundAdmissibility:
    """bound(point) <= inner-search total + fabric, always."""

    @settings(max_examples=10, deadline=None)
    @given(cfg=workloads, chips=chip_counts)
    def test_bounds_admissible(self, cfg, chips):
        system = _system(chips_per_channel=2)
        grid = evaluate_partition_grid(cfg, system, chips)
        view = system.chip_view()
        for i, part in enumerate(grid.partitions):
            shard = shard_config(cfg, part)
            result = search(shard, view, scope=Scope.LA,
                            objective=Objective.RUNTIME,
                            retain_points=False)
            chip_cycles = float(result.best.cost.total_cycles)
            for j in range(len(grid.schedules)):
                true_total = chip_cycles + float(grid.fabric_cycles[i, j])
                assert grid.bound_cycles[i, j] <= true_total, (
                    part, grid.schedules[j]
                )


class TestSearchEquivalence:
    """Pruned, memoized, warm-started — all byte-identical."""

    def _key(self, result):
        best = result.best
        return (
            best.partition, best.schedule, best.dataflow,
            best.chip_cost, best.fabric_cycles,
        )

    @settings(max_examples=8, deadline=None)
    @given(cfg=workloads, chips=chip_counts)
    def test_hierarchical_matches_exhaustive(self, cfg, chips):
        system = _system(chips_per_channel=2)
        clear_evaluation_cache()
        ref = search_scaleout(cfg, system, chips, exhaustive=True,
                              use_memo=False)
        clear_evaluation_cache()
        hier = search_scaleout(cfg, system, chips, exhaustive=False,
                               use_memo=False)
        assert self._key(hier) == self._key(ref)
        assert ref.stats.partitions_pruned == 0

    def test_winner_never_pruned(self):
        """The exhaustive winner's bound can never exceed the optimum,
        so the strict-inequality gate cannot fire against it."""
        cfg = _cfg(batch=8, heads=8, seq=128)
        system = _system(chips_per_channel=2)
        clear_evaluation_cache()
        ref = search_scaleout(cfg, system, 8, exhaustive=True,
                              use_memo=False)
        grid = ref.grid
        i = grid.partitions.index(ref.best.partition)
        j = grid.schedules.index(ref.best.schedule)
        optimum = ref.best.total_cycles
        assert grid.bound_cycles[i, j] <= optimum

    def test_stats_ledger_balances(self):
        cfg = _cfg(batch=8, heads=8, seq=128)
        clear_evaluation_cache()
        result = search_scaleout(cfg, _system(), 8, use_memo=False)
        stats = result.stats
        assert stats.memo_hits == 0
        assert stats.outer_enumerated == (
            stats.outer_evaluated + stats.partitions_pruned
        )
        assert stats.partitions_pruned > 0
        assert stats.inner_searches >= 1

    def test_memo_hit_short_circuits_repeat_search(self):
        cfg = _cfg()
        system = _system()
        clear_evaluation_cache()
        first = search_scaleout(cfg, system, 4)
        again = search_scaleout(cfg, system, 4)
        assert again.stats.memo_hits == 1
        assert again.stats.inner_searches == 0
        assert self._key(again) == self._key(first)

    def test_warm_chained_sweep_bit_identical_to_cold(self):
        cfg = _cfg(batch=8, heads=8, seq=128)
        system = _system(chips_per_channel=2)
        counts = (2, 4, 8)
        clear_evaluation_cache()
        cold = sweep_chip_counts(cfg, system, counts)
        clear_evaluation_cache()
        with default_warm_start(True):
            warm = sweep_chip_counts(cfg, system, counts)
            assert any(r.incumbent is not None for r in warm)
        assert [self._key(r) for r in warm] == [self._key(r) for r in cold]

    def test_default_exhaustive_context(self):
        cfg = _cfg(batch=8, heads=8, seq=128)
        clear_evaluation_cache()
        with default_scaleout_exhaustive(True):
            result = search_scaleout(cfg, _system(), 8, use_memo=False)
        assert result.stats.partitions_pruned == 0
        clear_evaluation_cache()
        result = search_scaleout(cfg, _system(), 8, use_memo=False)
        assert result.stats.partitions_pruned > 0

    def test_totals_accumulate(self):
        cfg = _cfg()
        clear_evaluation_cache()
        reset_scaleout_totals()
        result = search_scaleout(cfg, _system(), 4, use_memo=False)
        totals = scaleout_totals()
        assert totals == result.stats.as_dict()

    def test_total_cycles_is_chip_plus_fabric(self):
        cfg = _cfg(batch=2, seq=128)
        result = search_scaleout(cfg, _system(), 4, use_memo=False)
        best = result.best
        assert best.total_cycles == best.chip_cycles + best.fabric_cycles
        assert math.isfinite(best.total_cycles)
