"""Cost-model behavior for cross-attention (seq_q != seq_kv).

The IR supports it (paper Figure 1 footnote: "The Seq-length, N, in
Query can be different from N in Key and Value in cross-attention");
these tests pin down that the cost model handles the asymmetric shapes
correctly — encoder-decoder attention and the decode extreme.
"""

import pytest

from repro.arch.presets import cloud, edge
from repro.core.dataflow import base, flat_r
from repro.core.footprint import fused_la_footprint
from repro.core.perf import cost_la_pair
from repro.ops.attention import AttentionConfig


def cross_cfg(seq_q, seq_kv, heads=4, d_head=32, batch=4):
    return AttentionConfig(
        "cross", batch=batch, heads=heads, d_model=heads * d_head,
        seq_q=seq_q, seq_kv=seq_kv, d_ff=4 * heads * d_head,
    )


class TestCrossAttentionCost:
    def test_macs_scale_with_both_lengths(self, edge_accel):
        short = cost_la_pair(cross_cfg(64, 512), base(), edge_accel)
        long = cost_la_pair(cross_cfg(64, 2048), base(), edge_accel)
        assert long.counts.macs == pytest.approx(4 * short.counts.macs)

    def test_utilization_valid_for_asymmetric_shapes(self, edge_accel):
        for seq_q, seq_kv in ((1, 4096), (16, 1024), (1024, 16)):
            for df in (base(), flat_r(min(seq_q, 16))):
                cost = cost_la_pair(cross_cfg(seq_q, seq_kv), df, edge_accel)
                assert 0.0 < cost.utilization <= 1.0

    def test_intermediate_linear_when_one_side_fixed(self, edge_accel):
        a = cost_la_pair(cross_cfg(16, 1024), base(), edge_accel)
        b = cost_la_pair(cross_cfg(16, 4096), base(), edge_accel)
        # Baseline traffic is dominated by the seq_q x seq_kv
        # intermediate: quadrupling seq_kv roughly quadruples it.
        assert b.dram_bytes == pytest.approx(4 * a.dram_bytes, rel=0.35)

    def test_flat_footprint_tracks_kv_length(self):
        fp_short = fused_la_footprint(cross_cfg(256, 512), flat_r(16))
        fp_long = fused_la_footprint(cross_cfg(256, 2048), flat_r(16))
        # The 4*N*dk K/V staging term follows seq_kv.
        assert fp_long.rhs_elements == 4 * fp_short.rhs_elements

    def test_flat_still_wins_encoder_decoder(self, edge_accel):
        """A summarization-style decoder cross-attending a long
        encoder sequence."""
        cfg = cross_cfg(512, 8192, heads=8, d_head=64, batch=8)
        b = cost_la_pair(cfg, base(), edge_accel)
        f = cost_la_pair(cfg, flat_r(64), edge_accel)
        assert f.total_cycles < b.total_cycles

    def test_rows_clamped_to_seq_q(self, edge_accel):
        cfg = cross_cfg(8, 2048)
        cost = cost_la_pair(cfg, flat_r(512), edge_accel)
        assert cost.total_cycles > 0  # rows clamp, no crash
