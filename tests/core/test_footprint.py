"""Unit tests for the live-memory-footprint model (Table 2)."""

import pytest

from repro.core.dataflow import Granularity, StagingPolicy, base, base_x, flat_r, flat_x
from repro.core.footprint import (
    footprint_b_gran,
    footprint_h_gran,
    footprint_m_gran,
    footprint_r_gran,
    fused_la_footprint,
    operator_l3_footprint,
)
from repro.ops.attention import AttentionConfig, build_attention_layer
from repro.ops.operator import OperatorKind


def cfg(batch=4, heads=8, d_model=256, seq=128):
    return AttentionConfig(
        "fp", batch=batch, heads=heads, d_model=d_model, seq_q=seq,
        seq_kv=seq, d_ff=4 * d_model,
    )


class TestClosedFormsMatchBreakdown:
    """The Table 2 formulas must equal the per-tensor breakdown exactly."""

    def test_m_gran(self):
        c = cfg()
        assert fused_la_footprint(c, flat_x(Granularity.M)).total_elements \
            == footprint_m_gran(c.batch, c.heads, c.seq_q, c.d_model)

    def test_b_gran(self):
        c = cfg()
        assert fused_la_footprint(c, flat_x(Granularity.B)).total_elements \
            == footprint_b_gran(c.heads, c.seq_q, c.d_model)

    def test_h_gran(self):
        c = cfg()
        assert fused_la_footprint(c, flat_x(Granularity.H)).total_elements \
            == footprint_h_gran(c.seq_q, c.d_head)

    @pytest.mark.parametrize("rows", [1, 8, 64])
    def test_r_gran(self, rows):
        c = cfg()
        assert fused_la_footprint(c, flat_r(rows)).total_elements \
            == footprint_r_gran(rows, c.seq_q, c.d_head)


class TestScalingLaws:
    def test_r_gran_linear_in_n(self):
        small = footprint_r_gran(8, 1024, 64)
        big = footprint_r_gran(8, 4096, 64)
        assert big / small < 4.5  # O(N)

    def test_h_gran_quadratic_in_n(self):
        small = footprint_h_gran(1024, 64)
        big = footprint_h_gran(4096, 64)
        assert big / small > 10  # O(N^2)

    def test_m_gran_scales_with_batch(self):
        assert footprint_m_gran(8, 4, 128, 256) == \
            8 * footprint_b_gran(4, 128, 256)

    def test_granularity_ordering(self):
        c = cfg()
        m = fused_la_footprint(c, flat_x(Granularity.M)).total_elements
        b = fused_la_footprint(c, flat_x(Granularity.B)).total_elements
        h = fused_la_footprint(c, flat_x(Granularity.H)).total_elements
        r = fused_la_footprint(c, flat_r(4)).total_elements
        assert m > b > h > r


class TestStagingSelectivity:
    def test_disabling_all_gives_zero(self):
        c = cfg()
        df = flat_r(8, staging=StagingPolicy.all_disabled())
        assert fused_la_footprint(c, df).total_elements == 0

    def test_intermediate_only(self):
        c = cfg()
        df = flat_r(8, staging=StagingPolicy.intermediate_only())
        fp = fused_la_footprint(c, df)
        assert fp.intermediate_elements == 8 * c.seq_kv
        assert fp.lhs_elements == fp.rhs_elements == 0

    def test_intermediate_not_double_buffered(self):
        # Section 4.4: "no double buffering since it does not interact
        # with off-chip memory".
        c = cfg()
        fp = fused_la_footprint(c, flat_r(8))
        assert fp.intermediate_elements == 8 * c.seq_kv  # 1x, not 2x
        assert fp.rhs_elements == 2 * c.seq_kv * c.d_head  # 2x (K)

    def test_plain_base_footprint_zero(self):
        assert fused_la_footprint(cfg(), base()).total_elements == 0


class TestOperatorL3Footprint:
    def test_projection_weight_not_scaled_by_batch_tile(self):
        c = cfg()
        ops = build_attention_layer(c)
        q = next(o for o in ops if o.kind is OperatorKind.QUERY)
        df = base_x(Granularity.B, batch_tile=1)
        fp = operator_l3_footprint(q, df, c.batch, c.heads)
        assert fp.rhs_elements == 2 * c.d_model * c.d_model  # weight, 2x buf

    def test_plain_base_zero(self):
        c = cfg()
        ops = build_attention_layer(c)
        fp = operator_l3_footprint(ops[0], base(), c.batch, c.heads)
        assert fp.total_elements == 0

    def test_bytes_conversion(self):
        c = cfg()
        fp = fused_la_footprint(c, flat_r(8))
        assert fp.total_bytes(2) == 2 * fp.total_elements
