"""Unit tests for the DSE search engine (parallel / pruned / memoized).

The load-bearing property is *equivalence*: whatever combination of
jobs / prune / cache the engine runs with, the best design point it
returns — dataflow identity and objective value — must match the naive
serial full evaluation.  Everything else (stats invariants, bound
admissibility, cache behavior) supports that guarantee.
"""

import dataclasses

import pytest

from repro.core.dse import Objective, SearchSpace, enumerate_dataflows, search
from repro.core.engine import (
    EngineOptions,
    accelerator_fingerprint,
    clear_evaluation_cache,
    cycles_lower_bound,
    default_jobs,
    evaluation_cache_info,
    get_default_engine,
    objective_lower_bound,
    set_default_engine,
)
from repro.core.perf import cost_scope
from repro.ops.attention import Scope

# These exercise the scalar engine machinery (pruning, pooling, the
# per-candidate caches); the batch backend has its own suite in
# test_batch.py and is disabled here so the accounting assertions see
# the scalar path.
NAIVE = EngineOptions(jobs=1, prune=False, cache_size=0, batch=False)
FAST = EngineOptions(jobs=1, prune=True, cache_size=8192, batch=False)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Isolate every test from cross-test memoization."""
    clear_evaluation_cache()
    yield
    clear_evaluation_cache()


def _assert_same_best(a, b, objective=Objective.RUNTIME):
    assert a.best.dataflow == b.best.dataflow
    assert objective.score(a.best.cost, a.best.energy) == pytest.approx(
        objective.score(b.best.cost, b.best.energy)
    )


class TestEquivalence:
    """Engine vs naive serial sweep on fixed grids (acceptance criterion)."""

    def test_grid_edge_exhaustive_runtime(self, bert_512, edge_accel):
        space = SearchSpace(exhaustive_staging=True)
        naive = search(bert_512, edge_accel, scope=Scope.BLOCK,
                       space=space, engine=NAIVE)
        fast = search(bert_512, edge_accel, scope=Scope.BLOCK,
                      space=space, engine=FAST, retain_points=False)
        _assert_same_best(naive, fast)
        assert naive.best.cost.total_cycles == fast.best.cost.total_cycles

    def test_grid_cloud_la_runtime(self, bert_4k, cloud_accel):
        naive = search(bert_4k, cloud_accel, scope=Scope.LA, engine=NAIVE)
        fast = search(bert_4k, cloud_accel, scope=Scope.LA,
                      engine=FAST, retain_points=False)
        _assert_same_best(naive, fast)

    @pytest.mark.parametrize(
        "objective", [Objective.ENERGY, Objective.EDP, Objective.FOOTPRINT]
    )
    def test_every_objective_matches_naive(self, small_cfg, edge_accel,
                                           objective):
        naive = search(small_cfg, edge_accel, scope=Scope.LA,
                       objective=objective, engine=NAIVE)
        fast = search(small_cfg, edge_accel, scope=Scope.LA,
                      objective=objective, engine=FAST, retain_points=False)
        _assert_same_best(naive, fast, objective)

    def test_parallel_jobs_match_serial(self, small_cfg, edge_accel):
        naive = search(small_cfg, edge_accel, scope=Scope.LA, engine=NAIVE)
        par = search(small_cfg, edge_accel, scope=Scope.LA,
                     engine=EngineOptions(jobs=2, cache_size=0, batch=False),
                     retain_points=False)
        _assert_same_best(naive, par)
        assert par.stats.jobs == 2

    def test_parallel_retained_points_match_serial(self, small_cfg,
                                                   edge_accel):
        naive = search(small_cfg, edge_accel, scope=Scope.LA, engine=NAIVE)
        par = search(small_cfg, edge_accel, scope=Scope.LA,
                     engine=EngineOptions(jobs=2, cache_size=0, batch=False))
        assert [p.dataflow for p in par.points] == [
            p.dataflow for p in naive.points
        ]
        assert [p.cost.total_cycles for p in par.points] == pytest.approx(
            [p.cost.total_cycles for p in naive.points]
        )

    def test_cache_does_not_change_best(self, bert_512, edge_accel):
        space = SearchSpace(exhaustive_staging=True)
        naive = search(bert_512, edge_accel, space=space, engine=NAIVE)
        # Warm the cache under one objective, re-search under another:
        # hits seed the incumbent before any evaluation runs.
        search(bert_512, edge_accel, space=space, engine=FAST,
               retain_points=False)
        warm = search(bert_512, edge_accel, space=space, engine=FAST,
                      retain_points=False)
        _assert_same_best(naive, warm)
        assert warm.stats.cache_hits > 0


class TestBounds:
    def test_cycles_bound_admissible_over_space(self, small_cfg, edge_accel):
        space = SearchSpace(exhaustive_staging=True)
        for scope in (Scope.LA, Scope.BLOCK):
            for df in enumerate_dataflows(small_cfg, edge_accel, space):
                lb = cycles_lower_bound(small_cfg, scope, edge_accel, df)
                actual = cost_scope(small_cfg, scope, edge_accel,
                                    df).total_cycles
                assert lb <= actual, (df.name, df.staging, scope)

    def test_cycles_bound_admissible_bandwidth_bound(self, bert_4k,
                                                     edge_accel):
        # Long sequence on the edge platform: the regime where the
        # traffic floor dominates and pruning actually fires.
        for df in enumerate_dataflows(bert_4k, edge_accel):
            lb = cycles_lower_bound(bert_4k, Scope.LA, edge_accel, df)
            actual = cost_scope(bert_4k, Scope.LA, edge_accel,
                                df).total_cycles
            assert lb <= actual, (df.name, df.staging)

    def test_footprint_objective_has_no_bound(self, small_cfg, edge_accel):
        df = next(iter(enumerate_dataflows(small_cfg, edge_accel)))
        assert objective_lower_bound(
            Objective.FOOTPRINT, small_cfg, Scope.LA, edge_accel, df
        ) is None

    def test_objective_bounds_positive(self, small_cfg, edge_accel):
        df = next(iter(enumerate_dataflows(small_cfg, edge_accel)))
        for objective in (Objective.RUNTIME, Objective.ENERGY,
                          Objective.EDP):
            lb = objective_lower_bound(
                objective, small_cfg, Scope.LA, edge_accel, df
            )
            assert lb is not None and lb > 0


class TestStats:
    def test_invariant_and_pruning_fires(self, bert_4k, edge_accel):
        space = SearchSpace(exhaustive_staging=True)
        res = search(bert_4k, edge_accel, scope=Scope.LA, space=space,
                     engine=FAST, retain_points=False)
        s = res.stats
        assert s.enumerated == s.cache_hits + s.pruned + s.evaluated
        assert s.pruned > 0
        assert s.wall_time_s > 0

    def test_no_pruning_when_points_retained(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, engine=FAST)  # retain default
        assert res.stats.pruned == 0
        assert len(res.points) == res.stats.enumerated

    def test_no_pruning_for_footprint(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, objective=Objective.FOOTPRINT,
                     engine=FAST, retain_points=False)
        assert res.stats.pruned == 0

    def test_repeat_search_is_all_cache_hits(self, small_cfg, edge_accel):
        first = search(small_cfg, edge_accel, engine=FAST,
                       retain_points=False)
        second = search(small_cfg, edge_accel, engine=FAST,
                        retain_points=False)
        assert second.stats.cache_hits == (
            first.stats.evaluated + first.stats.cache_hits
        )
        assert second.stats.evaluated == 0

    def test_cache_size_zero_disables_memoization(self, small_cfg,
                                                  edge_accel):
        search(small_cfg, edge_accel, engine=NAIVE)
        assert evaluation_cache_info()["entries"] == 0

    def test_stats_validation(self):
        from repro.core.engine import SearchStats

        with pytest.raises(ValueError):
            SearchStats(enumerated=3, evaluated=1, pruned=1, cache_hits=0,
                        wall_time_s=0.0, jobs=1)


class TestRetainPoints:
    def test_fast_path_returns_no_points(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, engine=FAST,
                     retain_points=False)
        assert res.points == ()
        assert res.best.energy is not None  # winner's energy still derived

    def test_retained_points_carry_energy(self, small_cfg, edge_accel):
        res = search(small_cfg, edge_accel, engine=FAST)
        assert res.points
        assert all(p.energy is not None for p in res.points)


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineOptions(jobs=0)
        with pytest.raises(ValueError):
            EngineOptions(cache_size=-1)
        with pytest.raises(ValueError):
            EngineOptions(chunk_size=0)

    def test_default_jobs_contextmanager(self):
        before = get_default_engine()
        with default_jobs(3):
            assert get_default_engine().jobs == 3
        assert get_default_engine() == before
        with default_jobs(None):  # None leaves the default untouched
            assert get_default_engine() == before

    def test_set_default_engine_roundtrip(self):
        previous = set_default_engine(EngineOptions(jobs=2))
        try:
            assert get_default_engine().jobs == 2
        finally:
            set_default_engine(previous)


class TestFingerprint:
    def test_name_excluded(self, edge_accel):
        renamed = dataclasses.replace(edge_accel, name="other")
        assert accelerator_fingerprint(renamed) == accelerator_fingerprint(
            edge_accel
        )

    def test_scratchpad_included(self, edge_accel):
        resized = edge_accel.with_scratchpad_bytes(
            edge_accel.sg_bytes * 2
        )
        assert accelerator_fingerprint(resized) != accelerator_fingerprint(
            edge_accel
        )
