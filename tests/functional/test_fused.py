"""Equivalence tests: FLAT's fused schedules match unfused attention.

This is the numerical proof behind paper section 4.2.1: cross-operator
tiling at any granularity — including row granularity — respects the
softmax data dependency exactly.
"""

import numpy as np
import pytest

from repro.core.dataflow import Granularity
from repro.functional.fused import (
    baseline_attention_traffic,
    flat_attention,
    flat_attention_online,
)
from repro.functional.reference import AttentionInputs, reference_attention


def inputs(batch=2, heads=3, seq_q=24, seq_kv=24, d=8, seed=0, causal=False):
    return AttentionInputs.random(
        batch, heads, seq_q, seq_kv, d, seed=seed, causal_mask=causal
    )


class TestGranularityEquivalence:
    @pytest.mark.parametrize(
        "granularity", [Granularity.M, Granularity.B, Granularity.H]
    )
    def test_coarse_granularities_match_reference(self, granularity):
        x = inputs()
        expected = reference_attention(x)
        got = flat_attention(x, granularity=granularity).output
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("rows", [1, 2, 3, 8, 24, 100])
    def test_row_granularity_matches_reference(self, rows):
        x = inputs()
        expected = reference_attention(x)
        got = flat_attention(x, granularity=Granularity.R, rows=rows).output
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_non_divisible_row_count(self):
        x = inputs(seq_q=17, seq_kv=17)
        expected = reference_attention(x)
        got = flat_attention(x, granularity=Granularity.R, rows=5).output
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_cross_attention(self):
        x = inputs(seq_q=8, seq_kv=40)
        expected = reference_attention(x)
        got = flat_attention(x, granularity=Granularity.R, rows=4).output
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_causal_mask(self):
        x = inputs(causal=True)
        expected = reference_attention(x)
        got = flat_attention(x, granularity=Granularity.R, rows=6).output
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_rejects_non_positive_rows(self):
        with pytest.raises(ValueError):
            flat_attention(inputs(), granularity=Granularity.R, rows=0)


class TestOnlineExtension:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (4, 8), (24, 24), (7, 5)])
    def test_online_matches_reference(self, rows, cols):
        x = inputs()
        expected = reference_attention(x)
        got = flat_attention_online(x, rows=rows, cols=cols).output
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-11)

    def test_online_cross_attention(self):
        x = inputs(seq_q=8, seq_kv=40)
        expected = reference_attention(x)
        got = flat_attention_online(x, rows=3, cols=16).output
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-11)

    def test_online_footprint_independent_of_n(self):
        small = flat_attention_online(inputs(seq_kv=24, seq_q=24), 4, 8)
        # peak live for the online executor depends only on (rows, cols, d)
        big = flat_attention_online(inputs(seq_kv=96, seq_q=96), 4, 8)
        assert small.peak_live_elements == big.peak_live_elements


class TestTrafficAccounting:
    def test_fused_reads_each_input_once(self):
        x = inputs(batch=2, heads=3, seq_q=24, seq_kv=24, d=8)
        result = flat_attention(x, granularity=Granularity.R, rows=8)
        t = result.traffic
        total_inputs = x.q.size + x.k.size + x.v.size
        assert t.offchip_read_elements == total_inputs
        assert t.offchip_write_elements == result.output.size
        assert t.onchip_intermediate_elements == (
            x.batch * x.heads * x.seq_q * x.seq_kv
        )

    def test_baseline_moves_logits_four_times(self):
        x = inputs()
        t = baseline_attention_traffic(x)
        logit_elems = x.batch * x.heads * x.seq_q * x.seq_kv
        inputs_elems = x.q.size + x.k.size + x.v.size
        assert t.offchip_read_elements == inputs_elems + 2 * logit_elems
        assert t.offchip_write_elements == x.q.size + 2 * logit_elems

    def test_fused_traffic_beats_baseline_quadratically(self):
        x = inputs(seq_q=64, seq_kv=64)
        fused = flat_attention(x, granularity=Granularity.R, rows=8).traffic
        base = baseline_attention_traffic(x)
        assert fused.total_offchip_elements < base.total_offchip_elements
        # The gap is the 4 * B * H * N^2 logit movement.
        gap = base.total_offchip_elements - fused.total_offchip_elements
        assert gap == 4 * x.batch * x.heads * x.seq_q * x.seq_kv

    def test_r_gran_peak_live_linear_in_n(self):
        x1 = inputs(seq_q=24, seq_kv=24)
        x2 = inputs(seq_q=96, seq_kv=96)
        r1 = flat_attention(x1, granularity=Granularity.R, rows=4)
        r2 = flat_attention(x2, granularity=Granularity.R, rows=4)
        ratio = r2.peak_live_elements / r1.peak_live_elements
        assert ratio < 4.5  # linear-ish, not the 16x of O(N^2)

    def test_m_gran_peak_live_quadratic_in_n(self):
        x1 = inputs(seq_q=24, seq_kv=24)
        x2 = inputs(seq_q=96, seq_kv=96)
        r1 = flat_attention(x1, granularity=Granularity.M)
        r2 = flat_attention(x2, granularity=Granularity.M)
        assert r2.peak_live_elements / r1.peak_live_elements > 8.0
