"""Property-based tests (hypothesis) for the functional substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataflow import Granularity
from repro.functional.fused import flat_attention, flat_attention_online
from repro.functional.reference import AttentionInputs, reference_attention
from repro.functional.softmax import softmax

dims = st.integers(min_value=1, max_value=12)
seqs = st.integers(min_value=1, max_value=20)


@settings(max_examples=40, deadline=None)
@given(
    batch=dims, heads=dims, seq_q=seqs, seq_kv=seqs,
    d=st.integers(min_value=1, max_value=8),
    rows=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_row_granularity_always_matches_reference(
    batch, heads, seq_q, seq_kv, d, rows, seed
):
    """FLAT's row-granular schedule is exact for every shape."""
    x = AttentionInputs.random(batch, heads, seq_q, seq_kv, d, seed=seed)
    expected = reference_attention(x)
    got = flat_attention(x, granularity=Granularity.R, rows=rows).output
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-11)


@settings(max_examples=40, deadline=None)
@given(
    seq=st.integers(min_value=2, max_value=24),
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_online_softmax_always_matches_reference(seq, rows, cols, seed):
    """The streaming-softmax extension is exact for every tiling."""
    x = AttentionInputs.random(1, 2, seq, seq, 4, seed=seed)
    expected = reference_attention(x)
    got = flat_attention_online(x, rows=rows, cols=cols).output
    np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


@settings(max_examples=60, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
    shift=st.floats(min_value=-50, max_value=50, allow_nan=False),
)
def test_softmax_shift_invariance_and_normalization(rows, cols, seed, shift):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols))
    s = softmax(x)
    np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-10)
    assert np.all(s >= 0)
    np.testing.assert_allclose(s, softmax(x + shift), rtol=1e-9, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    seq=st.integers(min_value=1, max_value=16),
    rows=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_fused_traffic_invariants(seq, rows, seed):
    """Every fused run reads inputs exactly once and writes outputs once."""
    x = AttentionInputs.random(2, 2, seq, seq, 4, seed=seed)
    result = flat_attention(x, granularity=Granularity.R, rows=rows)
    t = result.traffic
    assert t.offchip_read_elements == x.q.size + x.k.size + x.v.size
    assert t.offchip_write_elements == result.output.size
    assert t.onchip_intermediate_elements == 2 * 2 * seq * seq
