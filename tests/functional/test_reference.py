"""Unit tests for the reference attention implementation."""

import numpy as np
import pytest

from repro.functional.reference import (
    AttentionInputs,
    reference_attention,
    reference_logits,
)
from repro.functional.softmax import softmax


class TestAttentionInputs:
    def test_random_shapes(self):
        x = AttentionInputs.random(2, 3, 5, 7, 4)
        assert x.batch == 2 and x.heads == 3
        assert x.seq_q == 5 and x.seq_kv == 7 and x.d_head == 4

    def test_default_scale(self):
        x = AttentionInputs.random(1, 1, 2, 2, 16)
        assert x.effective_scale == pytest.approx(0.25)

    def test_explicit_scale(self):
        x = AttentionInputs.random(1, 1, 2, 2, 16)
        y = AttentionInputs(q=x.q, k=x.k, v=x.v, scale=1.0)
        assert y.effective_scale == 1.0

    def test_causal_mask_requires_square(self):
        with pytest.raises(ValueError):
            AttentionInputs.random(1, 1, 4, 8, 2, causal_mask=True)

    def test_shape_validation(self):
        x = AttentionInputs.random(1, 2, 4, 4, 2)
        with pytest.raises(ValueError):
            AttentionInputs(q=x.q, k=x.k[:, :1], v=x.v)
        with pytest.raises(ValueError):
            AttentionInputs(q=x.q, k=x.k, v=x.v[:, :, :2])


class TestReferenceAttention:
    def test_logits_shape(self):
        x = AttentionInputs.random(2, 3, 5, 7, 4)
        assert reference_logits(x).shape == (2, 3, 5, 7)

    def test_output_shape(self):
        x = AttentionInputs.random(2, 3, 5, 7, 4)
        assert reference_attention(x).shape == (2, 3, 5, 4)

    def test_uniform_logits_average_values(self):
        # Identical keys -> uniform attention -> output is mean of V rows.
        q = np.ones((1, 1, 2, 4))
        k = np.ones((1, 1, 6, 4))
        v = np.arange(24, dtype=float).reshape(1, 1, 6, 4)
        x = AttentionInputs(q=q, k=k, v=v)
        out = reference_attention(x)
        np.testing.assert_allclose(out[0, 0, 0], v[0, 0].mean(axis=0))

    def test_causal_first_token_attends_only_itself(self):
        x = AttentionInputs.random(1, 1, 6, 6, 4, causal_mask=True)
        out = reference_attention(x)
        np.testing.assert_allclose(out[0, 0, 0], x.v[0, 0, 0], rtol=1e-12)

    def test_matches_manual_einsum(self):
        x = AttentionInputs.random(2, 2, 4, 4, 3, seed=9)
        logits = (
            np.einsum("bhqd,bhkd->bhqk", x.q, x.k) * x.effective_scale
        )
        expected = np.einsum("bhqk,bhkd->bhqd", softmax(logits), x.v)
        np.testing.assert_allclose(reference_attention(x), expected)
