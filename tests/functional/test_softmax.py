"""Unit tests for softmax kernels."""

import numpy as np
import pytest

from repro.functional.softmax import (
    OnlineSoftmaxState,
    row_block_softmax,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 16))
        s = softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-12)

    def test_invariant_to_row_shift(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 8))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-12)

    def test_numerically_stable_at_large_magnitudes(self):
        x = np.array([[1000.0, 1000.0, -1000.0]])
        s = softmax(x)
        assert np.all(np.isfinite(s))
        np.testing.assert_allclose(s[0, :2], 0.5, rtol=1e-12)

    def test_handles_neg_inf_mask_values(self):
        x = np.array([[0.0, -np.inf, 0.0]])
        s = softmax(x)
        np.testing.assert_allclose(s[0], [0.5, 0.0, 0.5])

    def test_axis_argument(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        np.testing.assert_allclose(softmax(x, axis=0).sum(axis=0), 1.0)


class TestRowBlockSoftmax:
    def test_matches_full_softmax_slices(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((32, 64))
        full = softmax(x)
        for start in range(0, 32, 8):
            block = row_block_softmax(x[start:start + 8])
            np.testing.assert_array_equal(block, full[start:start + 8])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            row_block_softmax(np.zeros((2, 3, 4)))


class TestOnlineSoftmax:
    def test_matches_reference_over_tiles(self):
        rng = np.random.default_rng(3)
        rows, n, d = 4, 64, 8
        logits = rng.standard_normal((rows, n))
        v = rng.standard_normal((n, d))
        expected = softmax(logits) @ v
        state = OnlineSoftmaxState(rows=rows, d_head=d)
        for start in range(0, n, 16):
            state.update(logits[:, start:start + 16], v[start:start + 16])
        np.testing.assert_allclose(state.output(), expected, rtol=1e-10)

    def test_single_tile_equals_direct(self):
        rng = np.random.default_rng(4)
        logits = rng.standard_normal((3, 10))
        v = rng.standard_normal((10, 5))
        state = OnlineSoftmaxState(rows=3, d_head=5)
        state.update(logits, v)
        np.testing.assert_allclose(
            state.output(), softmax(logits) @ v, rtol=1e-12
        )

    def test_tile_order_invariance_of_result(self):
        rng = np.random.default_rng(5)
        logits = rng.standard_normal((2, 32))
        v = rng.standard_normal((32, 4))
        a = OnlineSoftmaxState(rows=2, d_head=4)
        for s in range(0, 32, 8):
            a.update(logits[:, s:s + 8], v[s:s + 8])
        b = OnlineSoftmaxState(rows=2, d_head=4)
        for s in (16, 0, 24, 8):
            b.update(logits[:, s:s + 8], v[s:s + 8])
        np.testing.assert_allclose(a.output(), b.output(), rtol=1e-10)

    def test_output_before_update_raises(self):
        state = OnlineSoftmaxState(rows=2, d_head=2)
        with pytest.raises(RuntimeError):
            state.output()

    def test_shape_validation(self):
        state = OnlineSoftmaxState(rows=2, d_head=2)
        with pytest.raises(ValueError):
            state.update(np.zeros((3, 4)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            state.update(np.zeros((2, 4)), np.zeros((5, 2)))
