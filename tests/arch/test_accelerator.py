"""Unit tests for the accelerator config, PE array, SFU and presets."""

import pytest

from repro.arch.noc import NoCKind
from repro.arch.pe_array import PEArray
from repro.arch.presets import cloud, edge, get_platform
from repro.arch.sfu import SFUSpec


class TestPEArray:
    def test_num_pes(self):
        assert PEArray(32, 32).num_pes == 1024

    def test_peak_macs(self):
        assert PEArray(8, 8, macs_per_pe_per_cycle=2).peak_macs_per_cycle == 128

    def test_spatial_utilization_full(self):
        assert PEArray(8, 8).spatial_utilization(8, 8) == 1.0

    def test_spatial_utilization_partial(self):
        assert PEArray(8, 8).spatial_utilization(4, 8) == 0.5

    def test_spatial_utilization_clamps_oversize(self):
        assert PEArray(8, 8).spatial_utilization(100, 100) == 1.0

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            PEArray(0, 8)


class TestSFU:
    def test_softmax_cycles(self):
        sfu = SFUSpec(elements_per_cycle=128, softmax_passes=4)
        assert sfu.softmax_cycles(1280) == 40.0

    def test_softmax_flops(self):
        sfu = SFUSpec(elements_per_cycle=128, softmax_passes=4)
        assert sfu.softmax_flops(100) == 400

    def test_rejects_negative_elements(self):
        sfu = SFUSpec(elements_per_cycle=1)
        with pytest.raises(ValueError):
            sfu.softmax_cycles(-1)


class TestPresets:
    def test_edge_matches_figure_7a(self, edge_accel):
        assert edge_accel.pe_array.num_pes == 32 * 32
        assert edge_accel.sg_bytes == 512 * 1024
        assert edge_accel.scratchpad.bandwidth_bytes_per_sec == 1e12
        assert edge_accel.offchip.bandwidth_bytes_per_sec == 50e9
        assert edge_accel.frequency_hz == 1e9
        assert edge_accel.bytes_per_element == 2

    def test_cloud_matches_figure_7a(self, cloud_accel):
        assert cloud_accel.pe_array.num_pes == 256 * 256
        assert cloud_accel.sg_bytes == 32 * 1024 * 1024
        assert cloud_accel.scratchpad.bandwidth_bytes_per_sec == 8e12
        assert cloud_accel.offchip.bandwidth_bytes_per_sec == 400e9

    def test_get_platform(self):
        assert get_platform("edge").name == "edge"
        assert get_platform("cloud").name == "cloud"
        with pytest.raises(ValueError):
            get_platform("laptop")

    def test_derived_rates(self, edge_accel):
        assert edge_accel.offchip_bytes_per_cycle == 50.0
        assert edge_accel.onchip_bytes_per_cycle == 1000.0
        assert edge_accel.peak_macs_per_cycle == 1024
        assert edge_accel.peak_flops_per_sec == 2 * 1024 * 1e9

    def test_cycles_to_seconds(self, edge_accel):
        assert edge_accel.cycles_to_seconds(1e9) == 1.0


class TestVariants:
    def test_with_scratchpad_bytes(self, edge_accel):
        bigger = edge_accel.with_scratchpad_bytes(4 * 1024 * 1024)
        assert bigger.sg_bytes == 4 * 1024 * 1024
        # bandwidth preserved
        assert (
            bigger.scratchpad.bandwidth_bytes_per_sec
            == edge_accel.scratchpad.bandwidth_bytes_per_sec
        )
        # original untouched (frozen dataclasses)
        assert edge_accel.sg_bytes == 512 * 1024

    def test_with_offchip_bandwidth(self, edge_accel):
        fast = edge_accel.with_offchip_bandwidth(100e9)
        assert fast.offchip_bytes_per_cycle == 100.0

    def test_with_noc(self, edge_accel):
        tree = edge_accel.with_noc(NoCKind.TREE)
        assert tree.noc.kind is NoCKind.TREE
        assert edge_accel.noc.kind is NoCKind.SYSTOLIC
