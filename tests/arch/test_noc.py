"""Unit tests for the NoC models."""

import pytest

from repro.arch.noc import NoCKind, NoCSpec


def spec(kind, words=64):
    return NoCSpec(kind=kind, words_per_cycle=words)


class TestFillDrain:
    def test_systolic_fill_is_linear_in_array_edges(self):
        s = spec(NoCKind.SYSTOLIC)
        assert s.fill_drain_cycles(32, 32) == 62
        assert s.fill_drain_cycles(256, 256) == 510

    def test_tree_fill_is_logarithmic(self):
        s = spec(NoCKind.TREE)
        assert s.fill_drain_cycles(32, 32) == 10  # log2(1024)
        assert s.fill_drain_cycles(256, 256) == 16

    def test_crossbar_fill_is_constant(self):
        s = spec(NoCKind.CROSSBAR)
        assert s.fill_drain_cycles(32, 32) == 1
        assert s.fill_drain_cycles(256, 256) == 1

    def test_degenerate_single_pe(self):
        assert spec(NoCKind.SYSTOLIC).fill_drain_cycles(1, 1) == 0
        assert spec(NoCKind.TREE).fill_drain_cycles(1, 1) == 0

    def test_ordering_matches_topology_cost(self):
        # Crossbar <= tree <= systolic for any non-trivial array.
        for rows, cols in ((8, 8), (32, 32), (128, 64)):
            xb = spec(NoCKind.CROSSBAR).fill_drain_cycles(rows, cols)
            tr = spec(NoCKind.TREE).fill_drain_cycles(rows, cols)
            sy = spec(NoCKind.SYSTOLIC).fill_drain_cycles(rows, cols)
            assert xb <= tr <= sy

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            spec(NoCKind.SYSTOLIC).fill_drain_cycles(0, 4)


class TestBandwidth:
    def test_distribution_cycles(self):
        s = spec(NoCKind.TREE, words=128)
        assert s.distribution_cycles(1280) == 10.0

    def test_reduction_cycles(self):
        s = spec(NoCKind.SYSTOLIC, words=64)
        assert s.reduction_cycles(640) == 10.0

    def test_rejects_negative_words(self):
        with pytest.raises(ValueError):
            spec(NoCKind.TREE).distribution_cycles(-1)
        with pytest.raises(ValueError):
            spec(NoCKind.TREE).reduction_cycles(-1)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            NoCSpec(kind=NoCKind.TREE, words_per_cycle=0)

    def test_multicast_factor(self):
        assert spec(NoCKind.TREE).multicast_factor(16) == 16
        with pytest.raises(ValueError):
            spec(NoCKind.TREE).multicast_factor(0)
