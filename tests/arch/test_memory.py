"""Unit tests for the memory hierarchy models."""

import pytest

from repro.arch.memory import (
    OffChipSpec,
    ScratchpadSpec,
    SharedBandwidthArbiter,
)


class TestScratchpad:
    def test_bytes_per_cycle(self):
        sg = ScratchpadSpec(size_bytes=512 * 1024,
                            bandwidth_bytes_per_sec=1e12)
        assert sg.bytes_per_cycle(1e9) == 1000.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ScratchpadSpec(size_bytes=0, bandwidth_bytes_per_sec=1e12)
        with pytest.raises(ValueError):
            ScratchpadSpec(size_bytes=1024, bandwidth_bytes_per_sec=0)


class TestOffChip:
    def test_bytes_per_cycle(self):
        dram = OffChipSpec(bandwidth_bytes_per_sec=50e9)
        assert dram.bytes_per_cycle(1e9) == 50.0

    def test_rejects_non_positive_bw(self):
        with pytest.raises(ValueError):
            OffChipSpec(bandwidth_bytes_per_sec=0)


class TestArbiter:
    def test_single_requester(self):
        arb = SharedBandwidthArbiter(bytes_per_cycle=100.0)
        arb.request("a", 1000.0)
        assert arb.phase_cycles() == 10.0

    def test_shared_channel_sums_demands(self):
        arb = SharedBandwidthArbiter(bytes_per_cycle=50.0)
        arb.request("prefetch", 500.0)
        arb.request("writeback", 250.0)
        assert arb.total_demand() == 750.0
        assert arb.phase_cycles() == 15.0

    def test_accumulation_per_requester(self):
        arb = SharedBandwidthArbiter(bytes_per_cycle=1.0)
        arb.request("a", 10.0)
        arb.request("a", 5.0)
        assert arb.demand_of("a") == 15.0
        assert arb.demand_of("missing") == 0.0

    def test_reset(self):
        arb = SharedBandwidthArbiter(bytes_per_cycle=1.0)
        arb.request("a", 10.0)
        arb.reset()
        assert arb.total_demand() == 0.0

    def test_rejects_negative_demand(self):
        arb = SharedBandwidthArbiter(bytes_per_cycle=1.0)
        with pytest.raises(ValueError):
            arb.request("a", -1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            SharedBandwidthArbiter(bytes_per_cycle=0.0)
