"""Unit tests for the area model and iso-area design generation."""

import pytest

from repro.arch.area import AreaModel, accelerator_area_mm2, iso_area_designs
from repro.arch.presets import cloud, edge


class TestAreaModel:
    def test_component_areas_positive(self):
        m = AreaModel()
        assert m.pe_array_mm2(1024) > 0
        assert m.sram_mm2(512 * 1024) > 0
        assert m.sfu_mm2(1024) > 0

    def test_noc_overhead_applied(self):
        lean = AreaModel(noc_overhead_fraction=0.0)
        fat = AreaModel(noc_overhead_fraction=0.5)
        assert fat.pe_array_mm2(1024) == pytest.approx(
            1.5 * lean.pe_array_mm2(1024)
        )

    def test_rejects_bad_constants(self):
        with pytest.raises(ValueError):
            AreaModel(mm2_per_pe=0)
        with pytest.raises(ValueError):
            AreaModel(noc_overhead_fraction=1.0)

    def test_cloud_bigger_than_edge(self):
        assert accelerator_area_mm2(cloud()) > 10 * accelerator_area_mm2(
            edge()
        )

    def test_edge_area_plausible(self):
        # A small edge NPU: single-digit mm^2.
        area = accelerator_area_mm2(edge())
        assert 1.0 < area < 20.0


class TestIsoAreaDesigns:
    def test_designs_conserve_area(self):
        ref = edge()
        total = accelerator_area_mm2(ref)
        for design in iso_area_designs(ref, [0.1, 0.3, 0.6]):
            assert accelerator_area_mm2(design) == pytest.approx(
                total, rel=0.10
            )

    def test_sram_fraction_monotone(self):
        ref = edge()
        designs = iso_area_designs(ref, [0.1, 0.4, 0.8])
        sizes = [d.sg_bytes for d in designs]
        pes = [d.pe_array.num_pes for d in designs]
        assert sizes == sorted(sizes)
        assert pes == sorted(pes, reverse=True)

    def test_bandwidths_carried_over(self):
        ref = edge()
        for d in iso_area_designs(ref, [0.2]):
            assert d.offchip.bandwidth_bytes_per_sec == \
                ref.offchip.bandwidth_bytes_per_sec
            assert d.frequency_hz == ref.frequency_hz

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            iso_area_designs(edge(), [0.0])
        with pytest.raises(ValueError):
            iso_area_designs(edge(), [1.0])


class TestIsoAreaExperiment:
    def test_flat_wins_iso_area_throughput(self):
        from repro.experiments.iso_area import optimal_split, run

        rows = run(seq=4096, sram_fractions=(0.05, 0.2, 0.6))
        best_unfused, best_flat = optimal_split(rows)
        # Same silicon: FLAT converts it into more throughput.
        assert best_flat.flat_tops > best_unfused.unfused_tops
        # And FLAT's per-row utilization never trails the unfused one.
        for r in rows:
            assert r.flat_util >= r.unfused_util - 1e-9
