"""Tests for the chip-to-chip fabric collective cost model.

Two bars, mirroring the candidate layer's contract one level up:

* **Model shape** — near-square arrangements, torus doubling, the
  ring/tree alpha-beta tradeoff landing on the right side of its
  crossover, all-reduce paying both phases.
* **Admissibility** — :func:`collective_floor_s` must never exceed
  :func:`collective_time_s` for any schedule, probed over randomized
  (hypothesis) payloads, group sizes and link speeds: the scale-out
  branch-and-bound (:mod:`repro.core.scaleout`) prunes against it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.fabric import (
    CollectiveKind,
    CollectiveSchedule,
    FabricKind,
    FabricSpec,
    collective_floor_s,
    collective_time_s,
)


class TestFabricSpec:
    def test_dims_near_square(self):
        assert FabricSpec.dims(64) == (8, 8)
        assert FabricSpec.dims(32) == (4, 8)
        assert FabricSpec.dims(12) == (3, 4)

    def test_prime_count_degenerates_to_a_line(self):
        assert FabricSpec.dims(7) == (1, 7)

    def test_dims_rejects_zero(self):
        with pytest.raises(ValueError):
            FabricSpec.dims(0)

    def test_torus_doubles_bisection(self):
        mesh = FabricSpec(kind=FabricKind.MESH)
        torus = FabricSpec(kind=FabricKind.TORUS)
        assert torus.bisection_bytes_per_sec(16) == pytest.approx(
            2.0 * mesh.bisection_bytes_per_sec(16)
        )

    def test_bisection_scales_with_rows(self):
        spec = FabricSpec(link_bytes_per_sec=10e9)
        # 8x8: eight cut links, each duplex.
        assert spec.bisection_bytes_per_sec(64) == pytest.approx(
            2.0 * 8 * 10e9
        )

    def test_bisection_needs_two_chips(self):
        with pytest.raises(ValueError):
            FabricSpec().bisection_bytes_per_sec(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FabricSpec(link_bytes_per_sec=0)
        with pytest.raises(ValueError):
            FabricSpec(hop_latency_s=-1e-9)


class TestCollectiveTime:
    def test_one_chip_group_is_free(self):
        spec = FabricSpec()
        for schedule in CollectiveSchedule:
            assert collective_time_s(
                spec, schedule, CollectiveKind.ALL_GATHER, 1, 1 << 30
            ) == 0.0

    def test_empty_payload_is_free(self):
        spec = FabricSpec()
        assert collective_time_s(
            spec, CollectiveSchedule.RING, CollectiveKind.ALL_GATHER, 8, 0
        ) == 0.0

    def test_ring_wins_big_payloads_tree_wins_small(self):
        """The alpha-beta crossover: bandwidth vs latency dominance."""
        spec = FabricSpec(link_bytes_per_sec=25e9, hop_latency_s=1e-6)

        def t(schedule, payload):
            return collective_time_s(
                spec, schedule, CollectiveKind.ALL_GATHER, 64, payload
            )

        big, small = 1 << 30, 1 << 10
        assert t(CollectiveSchedule.RING, big) < t(
            CollectiveSchedule.TREE, big
        )
        assert t(CollectiveSchedule.TREE, small) < t(
            CollectiveSchedule.RING, small
        )

    def test_all_reduce_pays_two_phases(self):
        spec = FabricSpec()
        gather = collective_time_s(
            spec, CollectiveSchedule.RING, CollectiveKind.ALL_GATHER,
            16, 1 << 20,
        )
        reduce_ = collective_time_s(
            spec, CollectiveSchedule.RING, CollectiveKind.ALL_REDUCE,
            16, 1 << 20,
        )
        assert reduce_ == pytest.approx(2.0 * gather)

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            collective_time_s(
                FabricSpec(), CollectiveSchedule.RING,
                CollectiveKind.ALL_GATHER, 0, 1,
            )


class TestFloorAdmissibility:
    """floor <= time for every schedule, always."""

    @settings(max_examples=50, deadline=None)
    @given(
        chips=st.integers(min_value=2, max_value=256),
        payload=st.integers(min_value=1, max_value=1 << 34),
        link_gbs=st.sampled_from([1.0, 8.0, 25.0, 100.0]),
        hop_ns=st.sampled_from([0.0, 50.0, 1000.0]),
        kind=st.sampled_from(list(CollectiveKind)),
        fabric_kind=st.sampled_from(list(FabricKind)),
    )
    def test_floor_below_every_schedule(
        self, chips, payload, link_gbs, hop_ns, kind, fabric_kind
    ):
        spec = FabricSpec(
            kind=fabric_kind,
            link_bytes_per_sec=link_gbs * 1e9,
            hop_latency_s=hop_ns * 1e-9,
        )
        floor = collective_floor_s(spec, kind, chips, payload)
        for schedule in CollectiveSchedule:
            time = collective_time_s(spec, schedule, kind, chips, payload)
            assert floor <= time, (schedule, floor, time)

    def test_floor_free_cases_match_time(self):
        spec = FabricSpec()
        assert collective_floor_s(
            spec, CollectiveKind.ALL_GATHER, 1, 1 << 20
        ) == 0.0
        assert collective_floor_s(
            spec, CollectiveKind.ALL_GATHER, 8, 0
        ) == 0.0

    def test_floor_is_positive_when_work_exists(self):
        assert collective_floor_s(
            FabricSpec(), CollectiveKind.ALL_GATHER, 8, 1 << 20
        ) > 0.0
