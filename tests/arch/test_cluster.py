"""Tests for the multi-cluster (scale-out) model."""

import pytest

from repro.arch.cluster import ClusteredAccelerator, cluster_slice
from repro.arch.presets import cloud, edge


class TestClusterSlice:
    def test_divides_resources(self):
        ref = cloud()
        s = cluster_slice(ref, 4)
        assert s.pe_array.rows == ref.pe_array.rows // 4
        assert s.sg_bytes == ref.sg_bytes // 4
        assert s.scratchpad.bandwidth_bytes_per_sec == pytest.approx(
            ref.scratchpad.bandwidth_bytes_per_sec / 4
        )

    def test_single_cluster_is_identityish(self):
        ref = edge()
        s = cluster_slice(ref, 1)
        assert s.pe_array.num_pes == ref.pe_array.num_pes
        assert s.sg_bytes == ref.sg_bytes

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            cluster_slice(edge(), 0)


class TestClusteredAccelerator:
    def test_totals(self):
        system = ClusteredAccelerator(
            slice_accel=edge(), num_clusters=4,
            shared_offchip_bytes_per_sec=50e9,
        )
        assert system.total_pes == 4 * 1024
        assert system.peak_macs_per_cycle == 4 * 1024

    def test_per_cluster_view_shares_channel(self):
        system = ClusteredAccelerator(
            slice_accel=cloud(), num_clusters=8,
            shared_offchip_bytes_per_sec=400e9,
        )
        view = system.per_cluster_view()
        assert view.offchip.bandwidth_bytes_per_sec == pytest.approx(50e9)
        # Everything else is the slice's own.
        assert view.sg_bytes == cloud().sg_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredAccelerator(edge(), 0, 50e9)
        with pytest.raises(ValueError):
            ClusteredAccelerator(edge(), 2, 0)


class TestScaleoutExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.ext_scaleout import run

        return run(cluster_counts=(1, 2, 8))

    def test_unfused_pins_at_channel_limit(self, rows):
        """The quadratic baseline cannot use added clusters."""
        assert rows[1].base_tops == pytest.approx(rows[0].base_tops,
                                                  rel=0.05)
        assert rows[2].base_tops == pytest.approx(rows[0].base_tops,
                                                  rel=0.05)

    def test_flat_scales_with_clusters(self, rows):
        assert rows[1].flat_tops > 1.8 * rows[0].flat_tops
        assert rows[2].flat_tops > 6.0 * rows[0].flat_tops

    def test_advantage_grows(self, rows):
        advantages = [r.flat_advantage for r in rows]
        assert advantages == sorted(advantages)

    def test_report_renders(self, rows):
        from repro.experiments.ext_scaleout import format_report

        assert "shared" in format_report(rows)
