"""Tests for the multi-cluster (scale-out) model."""

import pytest

from repro.arch.cluster import ClusteredAccelerator, cluster_slice
from repro.arch.presets import cloud, edge


class TestClusterSlice:
    def test_divides_resources(self):
        ref = cloud()
        s = cluster_slice(ref, 4)
        assert s.pe_array.rows == ref.pe_array.rows // 4
        assert s.sg_bytes == ref.sg_bytes // 4
        assert s.scratchpad.bandwidth_bytes_per_sec == pytest.approx(
            ref.scratchpad.bandwidth_bytes_per_sec / 4
        )

    def test_single_cluster_is_identityish(self):
        ref = edge()
        s = cluster_slice(ref, 1)
        assert s.pe_array.num_pes == ref.pe_array.num_pes
        assert s.sg_bytes == ref.sg_bytes

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            cluster_slice(edge(), 0)


class TestClusteredAccelerator:
    def test_totals(self):
        system = ClusteredAccelerator(
            slice_accel=edge(), num_clusters=4,
            shared_offchip_bytes_per_sec=50e9,
        )
        assert system.total_pes == 4 * 1024
        assert system.peak_macs_per_cycle == 4 * 1024

    def test_per_cluster_view_shares_channel(self):
        system = ClusteredAccelerator(
            slice_accel=cloud(), num_clusters=8,
            shared_offchip_bytes_per_sec=400e9,
        )
        view = system.per_cluster_view()
        # Default contention 1.0 is the historical ideal fair share.
        assert view.offchip.bandwidth_bytes_per_sec == pytest.approx(50e9)
        # Everything else is the slice's own.
        assert view.sg_bytes == cloud().sg_bytes

    def test_contention_derates_the_share(self):
        system = ClusteredAccelerator(
            slice_accel=cloud(), num_clusters=8,
            shared_offchip_bytes_per_sec=400e9, contention=1.25,
        )
        view = system.per_cluster_view()
        assert view.offchip.bandwidth_bytes_per_sec == pytest.approx(40e9)
        assert system.effective_share_bytes_per_sec == pytest.approx(40e9)

    def test_single_cluster_ignores_contention(self):
        system = ClusteredAccelerator(
            slice_accel=cloud(), num_clusters=1,
            shared_offchip_bytes_per_sec=400e9, contention=2.0,
        )
        # An unshared channel streams at the full rate regardless of
        # the arbiter derate.
        assert system.effective_share_bytes_per_sec == pytest.approx(400e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredAccelerator(edge(), 0, 50e9)
        with pytest.raises(ValueError):
            ClusteredAccelerator(edge(), 2, 0)
        with pytest.raises(ValueError):
            ClusteredAccelerator(edge(), 2, 50e9, contention=0.9)


class TestScaleoutExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.ext_scaleout import run

        return run(chip_counts=(8, 16, 64))

    def test_throughput_scales_with_chips(self, rows):
        tops = [r.tops for r in rows]
        assert tops == sorted(tops)
        assert tops[-1] > 2 * tops[0]

    def test_unfused_baseline_stays_memory_bound(self, rows):
        assert all(r.unfused_regime == "memory" for r in rows)

    def test_regime_flips_to_fabric(self, rows):
        """The headline claim: enough chips turn attention fabric-bound."""
        regimes = [r.regime for r in rows]
        assert regimes[0] == "compute"
        assert regimes[-1] == "fabric"

    def test_partitions_stay_feasible(self, rows):
        for r in rows:
            ways = {p[0]: int(p[1:]) for p in r.partition.split("-")}
            assert ways["b"] * ways["h"] * ways["s"] == r.chips

    def test_report_renders(self, rows):
        from repro.experiments.ext_scaleout import format_report

        report = format_report(rows)
        assert "contention factor" in report
        assert "fabric-bound" in report
