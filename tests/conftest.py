"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch.presets import cloud, edge
from repro.models.configs import model_config
from repro.ops.attention import AttentionConfig


@pytest.fixture
def edge_accel():
    """The paper's edge platform (32x32 PEs, 512 KB, 50 GB/s)."""
    return edge()


@pytest.fixture
def cloud_accel():
    """The paper's cloud platform (256x256 PEs, 32 MB, 400 GB/s)."""
    return cloud()


@pytest.fixture
def small_cfg():
    """A tiny attention config for fast exact checks."""
    return AttentionConfig(
        name="tiny", batch=2, heads=4, d_model=64, seq_q=32, seq_kv=32,
        d_ff=128, num_blocks=2,
    )


@pytest.fixture
def bert_512():
    """BERT-base at the paper's shortest sequence length."""
    return model_config("bert", seq=512)


@pytest.fixture
def bert_4k():
    return model_config("bert", seq=4096)


@pytest.fixture
def xlm_16k():
    return model_config("xlm", seq=16384)
