"""Unit tests for the model zoo."""

import pytest

from repro.models.configs import (
    MODEL_ZOO,
    PAPER_BATCH,
    PAPER_SEQ_LENGTHS,
    model_config,
    model_names,
)


class TestZoo:
    def test_all_five_paper_models_present(self):
        assert set(MODEL_ZOO) == {"bert", "flaubert", "xlm", "trxl", "t5"}

    def test_model_names_ordering_covers_zoo(self):
        assert set(model_names()) == set(MODEL_ZOO)

    def test_paper_constants(self):
        assert PAPER_BATCH == 64
        assert PAPER_SEQ_LENGTHS == (512, 4096, 16384, 65536, 262144)

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_configs_are_valid(self, name):
        cfg = model_config(name, seq=1024)
        assert cfg.batch == PAPER_BATCH
        assert cfg.d_model % cfg.heads == 0
        assert cfg.seq_q == cfg.seq_kv == 1024
        assert cfg.num_blocks >= 6

    def test_bert_base_hyperparameters(self):
        cfg = model_config("bert", seq=512)
        assert (cfg.d_model, cfg.heads, cfg.d_ff, cfg.num_blocks) == (
            768, 12, 3072, 12
        )

    def test_xlm_is_the_wide_model(self):
        xlm = model_config("xlm", seq=512)
        assert xlm.d_model == 2048 and xlm.d_head == 128

    def test_custom_batch(self):
        assert model_config("t5", seq=512, batch=8).batch == 8

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            model_config("gpt5", seq=512)

    def test_invalid_seq_rejected(self):
        with pytest.raises(ValueError):
            model_config("bert", seq=0)
