"""Unit tests for the tensor spec."""

import pytest

from repro.ops.tensor import TensorRole, TensorSpec


class TestTensorSpec:
    def test_num_elements(self):
        t = TensorSpec("t", (2, 3, 4), TensorRole.ACTIVATION)
        assert t.num_elements == 24

    def test_size_bytes_default_16bit(self):
        t = TensorSpec("t", (10, 10), TensorRole.WEIGHT)
        assert t.size_bytes() == 200

    def test_size_bytes_custom_width(self):
        t = TensorSpec("t", (10,), TensorRole.WEIGHT)
        assert t.size_bytes(4) == 40

    def test_rank(self):
        assert TensorSpec("t", (1, 2, 3, 4), TensorRole.WEIGHT).rank == 4

    def test_with_name_preserves_shape_and_role(self):
        t = TensorSpec("a", (5, 6), TensorRole.WEIGHT)
        u = t.with_name("b")
        assert u.name == "b"
        assert u.dims == t.dims
        assert u.role is t.role

    def test_empty_dims_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("t", (), TensorRole.WEIGHT)

    def test_non_positive_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("t", (4, 0), TensorRole.WEIGHT)
        with pytest.raises(ValueError):
            TensorSpec("t", (4, -1), TensorRole.WEIGHT)

    def test_zero_byte_width_rejected(self):
        t = TensorSpec("t", (4,), TensorRole.WEIGHT)
        with pytest.raises(ValueError):
            t.size_bytes(0)

    def test_role_is_weight(self):
        assert TensorRole.WEIGHT.is_weight
        assert not TensorRole.ACTIVATION.is_weight
