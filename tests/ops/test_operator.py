"""Unit tests for the GEMM operator IR."""

import pytest

from repro.ops.operator import GemmOperator, OperatorKind
from repro.ops.tensor import TensorRole, TensorSpec


class TestOperatorKind:
    def test_activation_activation_is_exactly_l_and_a(self):
        aa = {k for k in OperatorKind if k.is_activation_activation}
        assert aa == {OperatorKind.LOGIT, OperatorKind.ATTEND}

    def test_projection_kinds(self):
        proj = {k for k in OperatorKind if k.is_projection}
        assert proj == {
            OperatorKind.QUERY, OperatorKind.KEY, OperatorKind.VALUE,
            OperatorKind.OUTPUT,
        }

    def test_ffn_kinds(self):
        ffn = {k for k in OperatorKind if k.is_ffn}
        assert ffn == {OperatorKind.FFN_UP, OperatorKind.FFN_DOWN}


class TestProjection:
    def test_shapes_and_macs(self):
        op = GemmOperator.projection(
            OperatorKind.QUERY, "q", batch=4, seq=128, d_in=64, d_out=64
        )
        assert (op.m, op.k, op.n) == (128, 64, 64)
        assert op.instances == 4
        assert op.macs == 4 * 128 * 64 * 64
        assert op.flops == 2 * op.macs
        assert op.rhs.role is TensorRole.WEIGHT

    def test_min_traffic(self):
        op = GemmOperator.projection(
            OperatorKind.KEY, "k", batch=2, seq=8, d_in=4, d_out=4
        )
        # in (2*8*4) + weight (4*4) + out (2*8*4)
        assert op.min_traffic_elements() == 64 + 16 + 64
        assert op.min_traffic_bytes(2) == 2 * (64 + 16 + 64)

    def test_operational_intensity_positive(self):
        op = GemmOperator.projection(
            OperatorKind.OUTPUT, "o", batch=2, seq=8, d_in=4, d_out=4
        )
        assert op.operational_intensity() > 0


class TestLogitAttend:
    def test_logit_shape(self):
        op = GemmOperator.logit("l", batch=2, heads=4, seq_q=16, seq_kv=32,
                                d_head=8)
        assert (op.m, op.k, op.n) == (16, 8, 32)
        assert op.instances == 8
        assert op.softmax_after
        assert op.is_activation_activation
        assert op.out.num_elements == 2 * 4 * 16 * 32

    def test_attend_shape(self):
        op = GemmOperator.attend("a", batch=2, heads=4, seq_q=16, seq_kv=32,
                                 d_head=8)
        assert (op.m, op.k, op.n) == (16, 32, 8)
        assert not op.softmax_after
        assert op.lhs.num_elements == 2 * 4 * 16 * 32

    def test_logit_attend_macs_match(self):
        l = GemmOperator.logit("l", 2, 4, 16, 16, 8)
        a = GemmOperator.attend("a", 2, 4, 16, 16, 8)
        assert l.macs == a.macs

    def test_cross_attention_shapes(self):
        op = GemmOperator.logit("l", batch=1, heads=2, seq_q=8, seq_kv=24,
                                d_head=4)
        assert op.m == 8 and op.n == 24


class TestValidation:
    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            GemmOperator.projection(OperatorKind.QUERY, "q", 1, 0, 4, 4)

    def test_mismatched_tensor_rejected(self):
        lhs = TensorSpec("x", (2, 3), TensorRole.ACTIVATION)
        rhs = TensorSpec("w", (3, 4), TensorRole.WEIGHT)
        bad_out = TensorSpec("y", (2, 5), TensorRole.ACTIVATION)
        with pytest.raises(ValueError):
            GemmOperator(
                kind=OperatorKind.QUERY, name="bad", m=2, k=3, n=4,
                instances=1, lhs=lhs, rhs=rhs, out=bad_out,
            )
