"""Unit tests for operational intensity (paper section 2.2, Table 1)."""

import pytest

from repro.ops.attention import AttentionConfig
from repro.ops.intensity import (
    batch_intensity_sweep,
    la_staging_bytes,
    logit_attend_intensity,
    logit_attend_intensity_reciprocal,
    projection_intensity,
    projection_intensity_reciprocal,
    qkvo_staging_bytes,
)


def cfg(batch=4, heads=8, d_model=512, seq=256):
    return AttentionConfig(
        "t", batch=batch, heads=heads, d_model=d_model, seq_q=seq,
        seq_kv=seq, d_ff=4 * d_model,
    )


class TestProjectionIntensity:
    def test_batching_raises_projection_intensity(self):
        i1 = projection_intensity(cfg(batch=1)).intensity
        i64 = projection_intensity(cfg(batch=64)).intensity
        assert i64 > i1

    def test_reciprocal_matches_formula(self):
        c = cfg()
        rec = projection_intensity_reciprocal(c)
        assert rec == pytest.approx(2 / c.d_model + 1 / (c.batch * c.seq_q))

    def test_exact_counts(self):
        c = cfg(batch=2, seq=8, d_model=16, heads=2)
        r = projection_intensity(c)
        assert r.ops == 2 * 2 * 8 * 16 * 16
        assert r.weight_accesses == 16 * 16
        assert r.input_accesses == r.output_accesses == 2 * 8 * 16


class TestLogitAttendIntensity:
    def test_batching_does_not_raise_la_intensity(self):
        i1 = logit_attend_intensity(cfg(batch=1)).intensity
        i64 = logit_attend_intensity(cfg(batch=64)).intensity
        assert i64 == pytest.approx(i1, rel=1e-9)

    def test_more_heads_lower_intensity(self):
        lo = logit_attend_intensity(cfg(heads=1)).intensity
        hi = logit_attend_intensity(cfg(heads=16)).intensity
        assert hi < lo

    def test_longer_sequence_higher_intensity(self):
        short = logit_attend_intensity(cfg(seq=128)).intensity
        long = logit_attend_intensity(cfg(seq=4096)).intensity
        assert long > short

    def test_reciprocal_matches_formula(self):
        c = cfg()
        rec = logit_attend_intensity_reciprocal(c)
        assert rec == pytest.approx(2 / c.seq_kv + c.heads / c.d_model)

    def test_la_below_projection_at_paper_scales(self):
        c = cfg(batch=64, heads=12, d_model=768, seq=512)
        assert (
            logit_attend_intensity(c).intensity
            < projection_intensity(c).intensity
        )


class TestTable1Staging:
    """Cross-check against the paper's Table 1 cells (D=1024, 16-bit)."""

    def _cfg(self, heads, seq):
        return AttentionConfig(
            "t1", batch=1, heads=heads, d_model=1024, seq_q=seq,
            seq_kv=seq, d_ff=4096,
        )

    def test_qkvo_512(self):
        assert qkvo_staging_bytes(self._cfg(1, 512)) == 4 * 1024 * 1024

    def test_qkvo_independent_of_heads(self):
        assert qkvo_staging_bytes(self._cfg(1, 512)) == qkvo_staging_bytes(
            self._cfg(16, 512)
        )

    def test_la_512_single_head_matches_paper(self):
        # Paper: 2.5 MB.
        assert la_staging_bytes(self._cfg(1, 512)) == int(2.5 * 1024 * 1024)

    def test_la_512_multi_head_matches_paper(self):
        # Paper: 10 MB.
        assert la_staging_bytes(self._cfg(16, 512)) == 10 * 1024 * 1024

    def test_la_2k_single_head_matches_paper(self):
        # Paper: 16 MB.
        assert la_staging_bytes(self._cfg(1, 2048)) == 16 * 1024 * 1024

    def test_la_grows_quadratically(self):
        b1 = la_staging_bytes(self._cfg(16, 1024))
        b2 = la_staging_bytes(self._cfg(16, 2048))
        # Quadratic term dominates at 16 heads: ratio between 3x and 4x.
        assert 3.0 < b2 / b1 <= 4.0

    def test_qkvo_grows_linearly(self):
        b1 = qkvo_staging_bytes(self._cfg(1, 1024))
        b2 = qkvo_staging_bytes(self._cfg(1, 2048))
        assert b2 / b1 < 2.0  # weight term keeps it sub-linear


class TestBatchSweep:
    def test_sweep_shape_and_monotonicity(self):
        rows = batch_intensity_sweep(cfg())
        batches = [r[0] for r in rows]
        assert batches == sorted(batches)
        proj = [r[1] for r in rows]
        la = [r[2] for r in rows]
        assert all(b >= a for a, b in zip(proj, proj[1:]))
        assert all(abs(b - a) / a < 1e-9 for a, b in zip(la, la[1:]))
