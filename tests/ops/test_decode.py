"""Tests for the KV-cached decode workload module."""

from __future__ import annotations

import pytest

from repro.models.configs import model_config
from repro.ops.attention import Scope
from repro.ops.decode import (
    DecodeTraffic,
    decode_config,
    decode_step_sweep,
    decode_traffic,
)


@pytest.fixture
def prefill():
    return model_config("bert", seq=512, batch=1)


class TestDecodeConfig:
    def test_single_query_row_growing_cache(self, prefill):
        step = decode_config(prefill, 2048)
        assert step.seq_q == 1
        assert step.seq_kv == 2048
        assert not step.is_self_attention

    def test_model_hyperparameters_carry_over(self, prefill):
        step = decode_config(prefill, 64)
        assert (step.heads, step.d_model, step.d_ff, step.num_blocks) == (
            prefill.heads, prefill.d_model, prefill.d_ff,
            prefill.num_blocks,
        )

    def test_name_suffix_idempotent(self, prefill):
        once = decode_config(prefill, 16)
        twice = decode_config(once, 32)
        assert once.name.endswith("-decode")
        assert twice.name == once.name

    def test_rejects_empty_cache(self, prefill):
        with pytest.raises(ValueError, match="kv_len"):
            decode_config(prefill, 0)


class TestWithSeqGuard:
    """Satellite fix: ``with_seq`` must not clobber cross-attention."""

    def test_with_seq_on_self_attention_still_works(self, prefill):
        assert prefill.with_seq(1024).seq_kv == 1024

    def test_with_seq_raises_on_cross_attention(self, prefill):
        step = decode_config(prefill, 2048)
        with pytest.raises(ValueError, match="with_kv_len"):
            step.with_seq(4096)

    def test_with_kv_len_grows_only_the_cache(self, prefill):
        step = decode_config(prefill, 2048)
        grown = step.with_kv_len(4096)
        assert grown.seq_q == 1
        assert grown.seq_kv == 4096


class TestStepSweep:
    def test_one_config_per_kv_len(self, prefill):
        sweep = decode_step_sweep(prefill, (16, 64, 256))
        assert [c.seq_kv for c in sweep] == [16, 64, 256]
        assert all(c.seq_q == 1 for c in sweep)

    def test_rejects_non_increasing(self, prefill):
        with pytest.raises(ValueError, match="strictly increasing"):
            decode_step_sweep(prefill, (64, 64))

    def test_rejects_empty(self, prefill):
        with pytest.raises(ValueError, match="at least one"):
            decode_step_sweep(prefill, ())


class TestDecodeTraffic:
    def test_cache_bytes_scale_with_kv_len(self, prefill):
        t1 = decode_traffic(decode_config(prefill, 1024))
        t2 = decode_traffic(decode_config(prefill, 2048))
        assert t2.cache_read_bytes == 2 * t1.cache_read_bytes

    def test_la_scope_has_no_weight_traffic(self, prefill):
        traffic = decode_traffic(decode_config(prefill, 1024), Scope.LA)
        assert traffic.weight_bytes == 0
        assert traffic.cache_read_bytes > 0

    def test_cache_read_is_exactly_k_plus_v(self, prefill):
        step = decode_config(prefill, 1024)
        traffic = decode_traffic(step, Scope.LA)
        kv_elems = 2 * step.batch * step.heads * step.seq_kv * step.d_head
        assert traffic.cache_read_bytes == kv_elems * 2

    def test_block_scope_weights_dominate_activations(self, prefill):
        traffic = decode_traffic(decode_config(prefill, 64), Scope.BLOCK)
        # One query token: O(D^2) weights versus O(D) activations.
        assert traffic.weight_bytes > traffic.activation_bytes

    def test_model_scope_replicates_blocks(self, prefill):
        block = decode_traffic(decode_config(prefill, 256), Scope.BLOCK)
        model = decode_traffic(decode_config(prefill, 256), Scope.MODEL)
        n = prefill.num_blocks
        assert model.total_bytes == n * block.total_bytes

    def test_cache_fraction_grows_with_kv(self, prefill):
        small = decode_traffic(decode_config(prefill, 64), Scope.BLOCK)
        large = decode_traffic(decode_config(prefill, 8192), Scope.BLOCK)
        assert large.cache_fraction > small.cache_fraction

    def test_total_is_the_sum(self):
        t = DecodeTraffic(kv_len=4, cache_read_bytes=10, weight_bytes=20,
                          activation_bytes=30)
        assert t.total_bytes == 60
        assert t.cache_fraction == pytest.approx(10 / 60)
