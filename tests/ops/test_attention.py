"""Unit tests for attention layer/block/model builders."""

import pytest

from repro.ops.attention import (
    AttentionConfig,
    Scope,
    build_attention_block,
    build_attention_layer,
    build_model,
    operators_for_scope,
)
from repro.ops.operator import OperatorKind


class TestAttentionConfig:
    def test_d_head(self, small_cfg):
        assert small_cfg.d_head == small_cfg.d_model // small_cfg.heads

    def test_self_attention_flag(self, small_cfg):
        assert small_cfg.is_self_attention
        cross = AttentionConfig(
            "x", batch=1, heads=2, d_model=8, seq_q=4, seq_kv=16, d_ff=16
        )
        assert not cross.is_self_attention

    def test_with_seq(self, small_cfg):
        c = small_cfg.with_seq(128)
        assert c.seq_q == c.seq_kv == 128
        assert c.batch == small_cfg.batch

    def test_with_batch(self, small_cfg):
        assert small_cfg.with_batch(7).batch == 7

    def test_heads_must_divide_d_model(self):
        with pytest.raises(ValueError):
            AttentionConfig("bad", 1, 3, 64, 8, 8, 16)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            AttentionConfig("bad", 0, 2, 64, 8, 8, 16)


class TestBuilders:
    def test_layer_has_six_operators(self, small_cfg):
        ops = build_attention_layer(small_cfg)
        assert [o.kind for o in ops] == [
            OperatorKind.QUERY, OperatorKind.KEY, OperatorKind.VALUE,
            OperatorKind.LOGIT, OperatorKind.ATTEND, OperatorKind.OUTPUT,
        ]

    def test_block_appends_two_ffns(self, small_cfg):
        ops = build_attention_block(small_cfg)
        assert len(ops) == 8
        assert ops[-2].kind is OperatorKind.FFN_UP
        assert ops[-1].kind is OperatorKind.FFN_DOWN
        assert ops[-2].n == small_cfg.d_ff

    def test_model_replicates_blocks(self, small_cfg):
        ops = build_model(small_cfg)
        assert len(ops) == 8 * small_cfg.num_blocks

    def test_logit_attend_chain_shapes(self, small_cfg):
        ops = build_attention_layer(small_cfg)
        logit = next(o for o in ops if o.kind is OperatorKind.LOGIT)
        attend = next(o for o in ops if o.kind is OperatorKind.ATTEND)
        assert logit.out.num_elements == attend.lhs.num_elements

    def test_cross_attention_key_length(self):
        cfg = AttentionConfig("x", 1, 2, 8, seq_q=4, seq_kv=16, d_ff=16)
        ops = build_attention_layer(cfg)
        logit = next(o for o in ops if o.kind is OperatorKind.LOGIT)
        assert logit.n == 16 and logit.m == 4


class TestScope:
    def test_la_scope_is_only_activation_activation(self, small_cfg):
        ops = operators_for_scope(small_cfg, Scope.LA)
        assert len(ops) == 2
        assert all(o.is_activation_activation for o in ops)

    def test_block_scope_has_eight(self, small_cfg):
        assert len(operators_for_scope(small_cfg, Scope.BLOCK)) == 8

    def test_model_scope_returns_single_block(self, small_cfg):
        # Model scope is block ops; the cost layer multiplies by
        # num_blocks.
        assert len(operators_for_scope(small_cfg, Scope.MODEL)) == 8
