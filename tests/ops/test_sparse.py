"""Unit tests for the sparse-attention patterns and the cost adapter."""

import pytest

from repro.arch.presets import edge
from repro.core.dataflow import base, flat_r
from repro.core.sparse_adapter import cost_sparse_la, sparse_equivalent_config
from repro.models.configs import model_config
from repro.ops.sparse import SparsePatternKind, SparsityPattern


class TestPatterns:
    def test_dense_density_one(self):
        p = SparsityPattern(SparsePatternKind.DENSE)
        assert p.density(4096) == 1.0
        assert p.row_span(4096) == 4096

    def test_local_window_density(self):
        p = SparsityPattern(SparsePatternKind.LOCAL_WINDOW, window=128)
        assert p.row_span(4096) == 257
        assert p.density(4096) == pytest.approx(257 / 4096)

    def test_window_clamped_to_seq(self):
        p = SparsityPattern(SparsePatternKind.LOCAL_WINDOW, window=4096)
        assert p.row_span(512) == 512
        assert p.density(512) == 1.0

    def test_block_local(self):
        p = SparsityPattern(SparsePatternKind.BLOCK_LOCAL, window=256)
        assert p.row_span(4096) == 256
        assert p.density(4096) == pytest.approx(1 / 16)

    def test_strided_span(self):
        p = SparsityPattern(SparsePatternKind.STRIDED, window=64)
        # local block (64) + one column per stride (4096/64 = 64).
        assert p.row_span(4096) == 128

    def test_density_decreases_with_length_for_local(self):
        p = SparsityPattern(SparsePatternKind.LOCAL_WINDOW, window=64)
        assert p.density(8192) < p.density(1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparsityPattern(SparsePatternKind.LOCAL_WINDOW, window=0)
        with pytest.raises(ValueError):
            SparsityPattern(SparsePatternKind.DENSE).density(0)

    def test_describe_mentions_kind(self):
        p = SparsityPattern(SparsePatternKind.BLOCK_LOCAL, window=64)
        assert "block-local" in p.describe(1024)


class TestCostAdapter:
    def test_equivalent_config_shrinks_kv(self):
        cfg = model_config("bert", seq=16384)
        p = SparsityPattern(SparsePatternKind.LOCAL_WINDOW, window=256)
        eq = sparse_equivalent_config(cfg, p)
        assert eq.seq_kv == 513
        assert eq.seq_q == cfg.seq_q  # queries untouched

    def test_dense_pattern_is_identity_cost(self):
        cfg = model_config("bert", seq=2048)
        accel = edge()
        p = SparsityPattern(SparsePatternKind.DENSE)
        direct = cost_sparse_la(cfg, p, flat_r(64), accel)
        from repro.core.perf import cost_la_pair

        ref = cost_la_pair(cfg, flat_r(64), accel)
        assert direct.total_cycles == pytest.approx(ref.total_cycles)

    def test_sparsity_cuts_cycles_roughly_by_density(self):
        cfg = model_config("bert", seq=16384)
        accel = edge()
        dense = cost_sparse_la(
            cfg, SparsityPattern(SparsePatternKind.DENSE), base(), accel
        )
        sparse = cost_sparse_la(
            cfg,
            SparsityPattern(SparsePatternKind.LOCAL_WINDOW, window=1024),
            base(), accel,
        )
        density = SparsityPattern(
            SparsePatternKind.LOCAL_WINDOW, window=1024
        ).density(16384)
        ratio = sparse.total_cycles / dense.total_cycles
        assert ratio == pytest.approx(density, rel=0.3)

    def test_flat_composes_with_sparsity(self):
        """FLAT still wins on the sparse workload (section 7's claim)."""
        cfg = model_config("bert", seq=16384)
        accel = edge()
        p = SparsityPattern(SparsePatternKind.LOCAL_WINDOW, window=512)
        unfused = cost_sparse_la(cfg, p, base(), accel)
        fused = cost_sparse_la(cfg, p, flat_r(64), accel)
        assert fused.total_cycles < unfused.total_cycles
