"""Unit tests for the operator graph and fusion legality."""

import pytest

from repro.ops.attention import build_attention_block
from repro.ops.graph import OperatorGraph, check_fusion_legality
from repro.ops.operator import GemmOperator, OperatorKind


@pytest.fixture
def graph(small_cfg):
    return OperatorGraph(build_attention_block(small_cfg))


class TestGraphStructure:
    def test_contains(self, graph):
        assert OperatorKind.LOGIT in graph
        assert OperatorKind.ATTEND in graph

    def test_logit_predecessors(self, graph):
        preds = {op.kind for op in graph.predecessors(OperatorKind.LOGIT)}
        assert preds == {OperatorKind.QUERY, OperatorKind.KEY}

    def test_attend_predecessors(self, graph):
        preds = {op.kind for op in graph.predecessors(OperatorKind.ATTEND)}
        assert preds == {OperatorKind.LOGIT, OperatorKind.VALUE}

    def test_topological_order_valid(self, graph):
        order = [op.kind for op in graph.topological_order()]
        assert len(order) == 8
        # Every producer precedes its consumer.
        for src, dst in [
            (OperatorKind.QUERY, OperatorKind.LOGIT),
            (OperatorKind.LOGIT, OperatorKind.ATTEND),
            (OperatorKind.ATTEND, OperatorKind.OUTPUT),
            (OperatorKind.FFN_UP, OperatorKind.FFN_DOWN),
        ]:
            assert order.index(src) < order.index(dst)

    def test_duplicate_kind_rejected(self, small_cfg):
        ops = build_attention_block(small_cfg)
        with pytest.raises(ValueError):
            OperatorGraph(ops + [ops[0]])

    def test_intermediate_elements_quadratic_for_logit(self, graph, small_cfg):
        logit_out = graph.intermediate_elements(OperatorKind.LOGIT)
        attend_out = graph.intermediate_elements(OperatorKind.ATTEND)
        n = small_cfg.seq_q
        assert logit_out == small_cfg.batch * small_cfg.heads * n * n
        assert attend_out == small_cfg.batch * small_cfg.heads * n * small_cfg.d_head
        assert logit_out > attend_out  # the quadratic vs linear contrast


class TestFusionLegality:
    def test_logit_attend_fusion_legal(self, graph):
        legality = check_fusion_legality(
            graph[OperatorKind.LOGIT], graph[OperatorKind.ATTEND]
        )
        assert legality.legal
        assert legality.min_rows == 1

    def test_other_pairs_illegal(self, graph):
        legality = check_fusion_legality(
            graph[OperatorKind.ATTEND], graph[OperatorKind.OUTPUT]
        )
        assert not legality.legal
        assert "quadratic" in legality.reason

    def test_shape_mismatch_illegal(self, small_cfg):
        logit = GemmOperator.logit("l", 1, 2, 8, 8, 4)
        attend = GemmOperator.attend("a", 1, 2, 16, 16, 4)
        legality = check_fusion_legality(logit, attend)
        assert not legality.legal
