"""Tests for the figure harnesses (reduced grids for speed)."""

import pytest

from repro.experiments import fig2, fig8, fig9, fig10, fig11, fig12
from repro.ops.attention import Scope

KB = 1024
_BUFFERS = (128 * KB, 512 * KB, 64 * 1024 * KB)


class TestFig2:
    def test_report_structure(self):
        report = fig2.run()
        names = {p.name for p in report.panel_a}
        assert {"CONV", "FC"} <= names
        assert report.la_footprint_bytes > report.sg_bytes  # the overhead
        assert "Figure 2" in fig2.format_report(report)


class TestFig8:
    @pytest.fixture(scope="class")
    def cells(self):
        return fig8.run(
            platform="edge", seqs=(512,), scopes=(Scope.LA,),
            buffer_sizes=_BUFFERS,
        )

    def test_lineup_present(self, cells):
        names = {c.dataflow_name for c in cells}
        assert {"Base", "Base-M", "FLAT-H", "Base-opt", "FLAT-opt"} <= names
        assert any(n.startswith("FLAT-R") for n in names)

    def test_flat_opt_dominates_base_opt(self, cells):
        by = {(c.dataflow_name, c.buffer_bytes): c for c in cells}
        for buf in _BUFFERS:
            assert (
                by[("FLAT-opt", buf)].utilization
                >= by[("Base-opt", buf)].utilization - 1e-9
            )

    def test_flat_r_reaches_cap_at_default_buffer(self, cells):
        by = {(c.dataflow_name, c.buffer_bytes): c for c in cells}
        flat_r_name = next(
            n for n in {c.dataflow_name for c in cells}
            if n.startswith("FLAT-R")
        )
        assert by[(flat_r_name, 512 * KB)].utilization > 0.9

    def test_report_renders(self, cells):
        out = fig8.format_report(cells, platform="edge")
        assert "scope=L-A" in out and "Base-opt" in out


class TestFig9:
    def test_normalization(self):
        cells = fig9.run(
            platform="edge", seqs=(512,), scopes=(Scope.LA,),
            buffer_sizes=_BUFFERS, include_dse=False,
        )
        assert max(c.normalized_energy for c in cells) == pytest.approx(1.0)
        assert all(0 < c.normalized_energy <= 1.0 for c in cells)

    def test_flat_energy_below_base(self):
        cells = fig9.run(
            platform="edge", seqs=(512,), scopes=(Scope.LA,),
            buffer_sizes=(512 * KB,), include_dse=False,
        )
        by = {c.dataflow_name: c for c in cells}
        assert by["FLAT-H"].energy_j < by["Base-H"].energy_j
        assert by["FLAT-B"].energy_j < by["Base-B"].energy_j


class TestFig10:
    @pytest.fixture(scope="class")
    def space(self):
        return fig10.run(row_choices=(8, 64, 256),
                         exhaustive_staging=False)

    def test_front_marked(self, space):
        points, result = space
        front = [p for p in points if p.on_pareto_front]
        assert front
        assert len(front) < len(points)

    def test_fine_granularity_on_front_at_small_footprint(self, space):
        points, _ = space
        front = sorted(
            (p for p in points if p.on_pareto_front),
            key=lambda p: p.footprint_bytes,
        )
        high_util_small = [
            p for p in front
            if p.utilization > 0.9 and p.footprint_bytes < 1024 * KB
        ]
        assert high_util_small  # the paper's top-left corner exists
        assert any(p.granularity == "R" for p in high_util_small)

    def test_report_renders(self, space):
        points, result = space
        out = fig10.format_report(points, result)
        assert "Pareto front" in out


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig11.run(platform="edge", seqs=(512, 4096))

    def test_three_accelerators(self, rows):
        assert {r.accelerator for r in rows} == {
            "BaseAccel", "FlexAccel", "ATTACC"
        }

    def test_projection_fc_shared_between_flex_and_attacc(self, rows):
        for seq in (512, 4096):
            flex = next(r for r in rows
                        if r.seq == seq and r.accelerator == "FlexAccel")
            att = next(r for r in rows
                       if r.seq == seq and r.accelerator == "ATTACC")
            assert att.projection_cycles == pytest.approx(
                flex.projection_cycles
            )
            assert att.fc_cycles == pytest.approx(flex.fc_cycles)
            # The gap, if any, is entirely in L-A.
            assert att.la_cycles <= flex.la_cycles + 1e-6

    def test_la_dominance_grows_with_n(self, rows):
        def la_share(seq, accel="BaseAccel"):
            r = next(x for x in rows
                     if x.seq == seq and x.accelerator == accel)
            return r.la_cycles / r.total_cycles

        assert la_share(4096) > la_share(512)

    def test_total_at_least_ideal(self, rows):
        for r in rows:
            assert r.total_cycles >= r.ideal_cycles * 0.999

    def test_report_renders(self, rows):
        assert "Figure 11" in fig11.format_report(rows)


class TestFig12:
    def test_speedup_grid_sanity(self):
        rows = fig12.run_speedup_grid(
            platforms=("cloud",), models=("bert",), seqs=(4096, 65536),
        )
        assert all(r.speedup_vs_flex >= 1.0 - 1e-9 for r in rows)
        assert all(r.speedup_vs_flex_m >= r.speedup_vs_flex - 1e-9
                   for r in rows)
        assert all(0 < r.energy_ratio_vs_flex <= 1.0 + 1e-9 for r in rows)

    def test_averages(self):
        rows = fig12.run_speedup_grid(
            platforms=("cloud",), models=("bert",), seqs=(4096,),
        )
        avg = fig12.averages(rows, "cloud")
        assert avg[0] == rows[0].speedup_vs_flex_m
        with pytest.raises(ValueError):
            fig12.averages(rows, "edge")

    def test_bw_requirement_attacc_below_baselines(self):
        rows = fig12.run_bw_requirement(seqs=(32768,))
        by = {r.accelerator: r for r in rows}
        att = by["ATTACC"].required_gbps
        flex = by["FlexAccel"].required_gbps
        assert att is not None
        # FlexAccel either needs far more BW or cannot reach the target.
        assert flex is None or flex > 5 * att

    def test_bw_requirement_u_shape(self):
        rows = fig12.run_bw_requirement(
            seqs=(2048, 8192, 131072),
            policies=(fig12.attacc(),),
        )
        values = [r.required_gbps for r in rows]
        assert all(v is not None for v in values)
        # Falls to the 4K-8K minimum, then rises (paper section 6.5.2).
        assert values[1] < values[0]
        assert values[2] > values[1]

    def test_reports_render(self):
        rows = fig12.run_speedup_grid(
            platforms=("cloud",), models=("bert",), seqs=(4096,),
        )
        assert "Figure 12(a)" in fig12.format_speedup_report(rows)
        bw = fig12.run_bw_requirement(seqs=(8192,))
        assert "Figure 12(b)" in fig12.format_bw_report(bw)
