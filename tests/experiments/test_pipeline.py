"""Tests for the parallel experiment pipeline and its manifest."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import pipeline as pipeline_mod
from repro.experiments.pipeline import (
    MANIFEST_SCHEMA,
    run_pipeline,
    write_manifest,
)
from repro.experiments.runner import run_experiment

SUBSET = ("table1", "table2", "fig2")


class TestRunPipeline:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiments"):
            run_pipeline(names=["fig99"], workers=1)

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="no experiments selected"):
            run_pipeline(names=[], workers=1)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_pipeline(names=["table1"], workers=0)

    def test_serial_reports_match_registry(self, tmp_path):
        result = run_pipeline(names=SUBSET, workers=1,
                              cache_dir=str(tmp_path / "cache"))
        assert tuple(r.name for r in result.runs) == SUBSET
        for run in result.runs:
            assert run.ok
            assert run.report == run_experiment(run.name)
            assert run.wall_time_s >= 0
            assert "searches" in run.search

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        serial = run_pipeline(names=SUBSET, workers=1,
                              cache_dir=str(tmp_path / "cache"))
        parallel = run_pipeline(names=SUBSET, workers=2,
                                cache_dir=str(tmp_path / "cache"))
        assert [r.report for r in serial.runs] == [
            r.report for r in parallel.runs
        ]

    def test_progress_streams_in_completion_order(self, tmp_path):
        seen = []
        result = run_pipeline(
            names=SUBSET, workers=1, cache_dir=str(tmp_path / "cache"),
            progress=lambda run, done, total: seen.append(
                (run.name, done, total)
            ),
        )
        assert [s[0] for s in seen] == list(SUBSET)
        assert [s[1] for s in seen] == [1, 2, 3]
        assert all(s[2] == 3 for s in seen)
        assert not result.failures

    def test_failing_experiment_is_isolated(self, monkeypatch):
        def boom(name, jobs=None, **kwargs):
            if name == "table2":
                raise RuntimeError("synthetic failure")
            return run_experiment(name, jobs=jobs, **kwargs)

        monkeypatch.setattr(pipeline_mod, "run_experiment", boom)
        result = run_pipeline(names=("table1", "table2"), workers=1,
                              cache_dir="")
        ok, failed = result.runs
        assert ok.ok
        assert failed.status == "error"
        assert "synthetic failure" in failed.report
        assert result.failures == (failed,)

    def test_dead_worker_does_not_abort_pipeline(self, monkeypatch):
        """A worker that dies mid-job must not take the run down.

        Regression: ``os._exit`` in a pool worker raises
        BrokenProcessPool out of *every* pending future, which used to
        abort ``run_pipeline`` wholesale.  Now the lost job is retried
        in an isolation pool (where it dies again, definitively), gets
        a synthesized ``error`` run, and the survivors complete.
        """
        def killer(name, jobs=None, **kwargs):
            if name == "table2":
                os._exit(13)
            return run_experiment(name, jobs=jobs, **kwargs)

        monkeypatch.setattr(pipeline_mod, "run_experiment", killer)
        result = run_pipeline(names=SUBSET, workers=2, cache_dir="")
        assert tuple(r.name for r in result.runs) == SUBSET
        by_name = {r.name: r for r in result.runs}
        assert by_name["table2"].status == "error"
        assert "BrokenProcessPool" in by_name["table2"].report
        assert by_name["table1"].ok
        assert by_name["fig2"].ok
        assert result.failures == (by_name["table2"],)

    def test_pipeline_preserves_caller_search_totals(self):
        """Regression: run_pipeline used to zero the caller's totals.

        The serial path shares this process's accumulator; it must
        save and restore it instead of resetting it in place.
        """
        from repro.core import engine

        engine.reset_search_totals()
        engine._totals["searches"] = 7
        engine._totals["evaluated"] = 11
        before = engine.search_totals()
        try:
            run_pipeline(names=("table1",), workers=1, cache_dir="")
            assert engine.search_totals() == before
        finally:
            engine.reset_search_totals()


class TestManifest:
    def test_manifest_layout_and_hashes(self, tmp_path):
        result = run_pipeline(names=("table1",), workers=1,
                              cache_dir=str(tmp_path / "cache"))
        manifest_path = write_manifest(result, tmp_path / "out")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["workers"] == 1
        assert len(manifest["cost_model_fingerprint"]) == 64
        (entry,) = manifest["experiments"]
        assert entry["name"] == "table1"
        assert entry["status"] == "ok"
        report = (tmp_path / "out" / entry["report_path"]).read_text()
        assert report == result.runs[0].report + "\n"
        assert entry["report_sha256"] == result.runs[0].report_sha256()
        agg = manifest["aggregate"]
        assert agg["experiments"] == 1 and agg["failures"] == 0
        assert "cache" in agg and "search" in agg

    def test_two_runs_share_cache_and_agree(self, tmp_path):
        from repro.core.engine import clear_evaluation_cache

        cache = str(tmp_path / "cache")
        first = run_pipeline(names=("fig11-edge",), workers=1,
                             cache_dir=cache)
        # Pool workers fork from this process: drop its in-memory LRU
        # so every hit the fresh workers see must come from disk.
        clear_evaluation_cache()
        second = run_pipeline(names=("fig11-edge",), workers=2,
                              cache_dir=cache)
        assert first.runs[0].report == second.runs[0].report
        # The warm run's workers are fresh processes: every hit they
        # get comes from the persistent cache written by the first run.
        assert second.aggregate_cache().get("hits", 0) > 0
        assert second.aggregate_search()["disk_hits"] > 0
