"""Tests for the Table 1 and Table 2 harnesses."""

from repro.experiments import table1, table2


class TestTable1:
    def test_paper_grid_cells(self):
        rows = {(r.heads, r.seq): r for r in table1.run()}
        mb = 1024 * 1024
        # Paper cells (D=1024, 16-bit).
        assert rows[(1, 512)].qkvo_bytes == 4 * mb
        assert rows[(1, 512)].la_bytes == int(2.5 * mb)
        assert rows[(16, 512)].la_bytes == 10 * mb
        assert rows[(1, 2048)].la_bytes == 16 * mb

    def test_qkvo_head_independent(self):
        rows = {(r.heads, r.seq): r for r in table1.run()}
        for seq in (512, 2048, 14336):
            assert rows[(1, seq)].qkvo_bytes == rows[(16, seq)].qkvo_bytes

    def test_la_explodes_with_heads_and_length(self):
        rows = {(r.heads, r.seq): r for r in table1.run()}
        assert rows[(16, 14336)].la_bytes > 6 * 1024 ** 3  # ~6.2 GB

    def test_report_renders(self):
        out = table1.format_report(table1.run())
        assert "K/Q/V/O" in out and "L/A" in out


class TestTable2:
    def test_closed_forms_match_breakdown(self):
        for row in table2.run():
            assert row.consistent, row.granularity

    def test_granularity_ordering(self):
        rows = {r.granularity: r for r in table2.run()}
        assert (
            rows["M-Gran"].closed_form_elements
            > rows["B-Gran"].closed_form_elements
            > rows["H-Gran"].closed_form_elements
            > rows["R-Gran"].closed_form_elements
        )

    def test_r_gran_linear_scaling(self):
        small = {r.granularity: r for r in table2.run(seq=1024)}
        big = {r.granularity: r for r in table2.run(seq=4096)}
        r_ratio = (
            big["R-Gran"].closed_form_elements
            / small["R-Gran"].closed_form_elements
        )
        h_ratio = (
            big["H-Gran"].closed_form_elements
            / small["H-Gran"].closed_form_elements
        )
        assert r_ratio < 4.5 < h_ratio  # O(N) vs O(N^2)

    def test_report_flags_consistency(self):
        out = table2.format_report(table2.run())
        assert "NO" not in out
