"""Tests for the experiment registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import (
    EXPERIMENTS,
    experiment_names,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        names = set(experiment_names())
        assert {
            "table1", "table2", "fig2", "fig8-edge", "fig8-cloud",
            "fig9-edge", "fig9-cloud", "fig10", "fig11-edge",
            "fig11-cloud", "fig12a", "fig12b",
        } <= names

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_fast_experiments_return_reports(self):
        for name in ("table1", "table2", "fig2", "fig10"):
            out = run_experiment(name)
            assert isinstance(out, str) and out

    def test_registry_callables_are_zero_arg(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)


class TestCLI:
    def test_parser_accepts_experiment(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"

    def test_list_prints_names(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig12b" in out

    def test_run_experiment(self, capsys):
        assert main(["table2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2
        assert "error" in capsys.readouterr().err
