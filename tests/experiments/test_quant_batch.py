"""Tests for the quantization and batch-lever extension experiments."""

import pytest

from repro.experiments import ext_batch, ext_quant


class TestExtQuant:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_quant.run()

    def test_precisions_covered(self, rows):
        assert [r.bits for r in rows] == [16, 8]

    def test_quantization_lifts_the_baseline(self, rows):
        r16, r8 = rows
        assert r8.base_util > 1.5 * r16.base_util

    def test_flat_advantage_persists_at_both_precisions(self, rows):
        for r in rows:
            assert r.flat_speedup > 1.5

    def test_footprint_halves(self, rows):
        r16, r8 = rows
        assert r8.flat_footprint_bytes == pytest.approx(
            r16.flat_footprint_bytes / 2, rel=0.05
        )

    def test_rejects_non_byte_widths(self):
        with pytest.raises(ValueError):
            ext_quant.run(widths=(12,))

    def test_report_renders(self, rows):
        assert "quantization" in ext_quant.format_report(rows)


class TestExtBatch:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_batch.run(batches=(1, 16, 256))

    def test_projections_rise_with_batch(self, rows):
        utils = [r.projection_util for r in rows]
        assert utils == sorted(utils)
        assert utils[-1] > 1.5 * utils[0]

    def test_la_flat_in_batch(self, rows):
        """Section 2.2: batching cannot raise L/A utilization."""
        la = [r.la_util for r in rows]
        assert max(la) - min(la) < 0.05

    def test_projections_end_near_peak(self, rows):
        assert rows[-1].projection_util > 0.95

    def test_report_renders(self, rows):
        assert "batch-size lever" in ext_batch.format_report(rows)
