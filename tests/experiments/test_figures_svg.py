"""Tests for the SVG figure renderers."""

import pytest

from repro.experiments import figures_svg


class TestFig8Chart:
    def test_builds_with_all_series(self):
        chart = figures_svg.fig8_chart("edge", 512)
        names = {s.name for s in chart.series}
        assert "Base" in names and "FLAT-opt" in names
        svg = chart.to_svg()
        assert svg.startswith("<svg") and "polyline" in svg


class TestFig10Chart:
    def test_granularity_series(self):
        chart = figures_svg.fig10_chart()
        names = {s.name for s in chart.series}
        assert "R-Gran" in names
        assert chart.log_x
        assert "</svg>" in chart.to_svg()


class TestFig12bChart:
    def test_skips_unreachable_points(self):
        chart = figures_svg.fig12b_chart(seqs=(8192, 32768))
        # ATTACC always present; baselines may drop unreachable points
        # but never produce empty series.
        names = {s.name for s in chart.series}
        assert "ATTACC" in names
        for s in chart.series:
            assert s.points

    def test_log_log(self):
        chart = figures_svg.fig12b_chart(seqs=(8192,))
        assert chart.log_x and chart.log_y


class TestRenderAll:
    def test_writes_all_figures(self, tmp_path):
        paths = figures_svg.render_all(str(tmp_path))
        assert len(paths) == 4
        for p in paths:
            with open(p) as f:
                assert f.read(4) == "<svg"

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "figs"
        paths = figures_svg.render_all(str(target))
        assert target.exists() and paths
