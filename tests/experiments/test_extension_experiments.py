"""Tests for the beyond-paper extension experiments."""

import pytest

from repro.experiments import ext_decode, ext_online, ext_sparse, ext_suite
from repro.experiments import iso_area
from repro.experiments.iso_area import optimal_split


class TestIsoArea:
    @pytest.fixture(scope="class")
    def rows(self):
        return iso_area.run(sram_fractions=(0.05, 0.2, 0.6))

    def test_pe_sram_tradeoff(self, rows):
        assert rows[0].num_pes > rows[-1].num_pes
        assert rows[0].sg_bytes < rows[-1].sg_bytes

    def test_flat_extracts_more_throughput(self, rows):
        best_unfused, best_flat = optimal_split(rows)
        assert best_flat.flat_tops > best_unfused.unfused_tops

    def test_flat_util_never_below_unfused(self, rows):
        for r in rows:
            assert r.flat_util >= r.unfused_util - 1e-9

    def test_report_renders(self, rows):
        out = iso_area.format_report(rows)
        assert "Iso-area" in out and "Throughput-optimal" in out


class TestExtOnline:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_online.run(seqs=(512, 16384, 262144))

    def test_online_utilization_n_independent(self, rows):
        utils = [r.online_util for r in rows]
        assert max(utils) - min(utils) < 0.05

    def test_online_footprint_constant(self, rows):
        assert len({r.online_footprint_bytes for r in rows}) == 1

    def test_flat_footprint_explodes(self, rows):
        footprints = [r.flat_footprint_bytes for r in rows]
        assert footprints[-1] > 100 * footprints[0]

    def test_report_renders(self, rows):
        assert "online softmax" in ext_online.format_report(rows)


class TestExtSparse:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_sparse.run(seq=16384)

    def test_dense_first_row(self, rows):
        assert rows[0].density == 1.0

    def test_sparsity_reduces_cycles(self, rows):
        dense = rows[0]
        for r in rows[1:]:
            assert r.base_cycles < dense.base_cycles
            assert r.flat_cycles < dense.flat_cycles

    def test_flat_speedup_composes_on_sparse_patterns(self, rows):
        # On the sparse workloads FLAT still wins (section 7).
        for r in rows[1:]:
            assert r.flat_speedup > 1.2

    def test_combined_speedup_multiplicative(self, rows):
        dense = rows[0]
        sparse = rows[1]
        combined = dense.base_cycles / sparse.flat_cycles
        assert combined > (1.0 / sparse.density) * 0.8

    def test_report_renders(self, rows):
        assert "sparse attention" in ext_sparse.format_report(rows)


class TestExtSuite:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_suite.run()

    def test_covers_lra_and_intro_apps(self, rows):
        names = {r.workload for r in rows}
        assert any(n.startswith("lra-") for n in names)
        assert any("summarization" in n for n in names)

    def test_long_sequence_apps_see_large_speedups(self, rows):
        img = next(r for r in rows if "image-generation" in r.workload)
        assert img.speedup > 3.0

    def test_flat_never_loses(self, rows):
        for r in rows:
            assert r.flat_util >= r.base_util - 1e-9

    def test_report_renders(self, rows):
        assert "LRA" in ext_suite.format_report(rows)


class TestExtDecode:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_decode.run(kv_lens=(2048, 131072))

    def test_decode_is_bandwidth_bound(self, rows):
        for r in rows:
            assert r.base_util < 0.05
            assert r.flat_util < 0.05

    def test_flat_advantage_vanishes(self, rows):
        """The honest boundary: no quadratic tensor, no FLAT win."""
        for r in rows:
            assert r.speedup == pytest.approx(1.0, abs=0.1)

    def test_intermediate_linear_in_kv(self, rows):
        assert rows[1].intermediate_bytes == pytest.approx(
            rows[0].intermediate_bytes * (131072 / 2048)
        )

    def test_report_renders(self, rows):
        assert "decode" in ext_decode.format_report(rows)

    def test_variant_table_appends_only(self, rows):
        """The baseline report bytes are identical with and without the
        variant table — the decode-equivalence CI property."""
        variant_rows = ext_decode.run_variants(kv_lens=(2048,))
        baseline = ext_decode.format_report(rows)
        extended = ext_decode.format_report(rows, variant_rows)
        assert extended.startswith(baseline)
        assert "variant" in extended[len(baseline):]

    def test_variants_never_lose_on_decode(self):
        for r in ext_decode.run_variants(kv_lens=(2048,)):
            assert r.speedup >= 1.0 - 1e-12
