"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so
``python setup.py develop`` still works on offline machines whose
setuptools predates the self-contained PEP 660 editable-install path
(which otherwise requires the ``wheel`` package from an index).
"""

from setuptools import setup

setup(install_requires=["numpy>=1.24"])
