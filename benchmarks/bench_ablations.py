"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures — these quantify the individual mechanisms FLAT
composes: per-tensor FLAT-tile staging, the NoC topology, the spill
accounting, interleaving vs sequential execution, and the online-softmax
extension that lifts the full-row constraint.
"""

import pytest

from repro.analysis.reports import format_float, format_table
from repro.arch.noc import NoCKind
from repro.arch.presets import edge
from repro.core.dataflow import Granularity, StagingPolicy, base, flat_r
from repro.core.perf import PerfOptions, cost_la_pair
from repro.functional.fused import flat_attention, flat_attention_online
from repro.functional.reference import AttentionInputs
from repro.models.configs import model_config


def test_ablation_staging_enables(benchmark, report_printer):
    """Disable each FLAT-tile in turn (the 2^5 choices of section 4.3)."""
    cfg = model_config("bert", seq=4096)
    accel = edge().with_scratchpad_bytes(64 * 1024 * 1024)

    def run():
        rows = []
        for label, staging in [
            ("all enabled", StagingPolicy.all_enabled()),
            ("no Q", StagingPolicy(lhs=False)),
            ("no K", StagingPolicy(rhs=False)),
            ("no V", StagingPolicy(rhs2=False)),
            ("no out", StagingPolicy(out=False)),
            ("no intermediate", StagingPolicy(intermediate=False)),
            ("intermediate only", StagingPolicy.intermediate_only()),
        ]:
            cost = cost_la_pair(cfg, flat_r(128, staging=staging), accel)
            rows.append((label, cost.utilization, cost.dram_bytes / 1e9))
        return rows

    rows = benchmark(run)
    report_printer(
        format_table(
            ["FLAT-tile config", "Util", "DRAM (GB)"],
            [(l, format_float(u), format_float(d, 1)) for l, u, d in rows],
            title="Ablation: per-tensor FLAT-tile staging (BERT-4K, edge)",
        )
    )
    by = dict((l, (u, d)) for l, u, d in rows)
    # Disabling the intermediate costs the O(N^2) round trip — the
    # single most expensive switch to flip.
    assert by["no intermediate"][1] > 2 * by["all enabled"][1]
    assert by["no intermediate"][0] < by["all enabled"][0]
    # Q and out are streaming tiles: disabling them is nearly free.
    assert by["no Q"][0] == pytest.approx(by["all enabled"][0], rel=0.05)
    assert by["no out"][0] == pytest.approx(by["all enabled"][0], rel=0.05)


def test_ablation_noc_topology(benchmark, report_printer):
    """Systolic vs tree vs crossbar fill/drain cost on a rigid array."""
    cfg = model_config("bert", seq=512)
    options = PerfOptions(flexible_mapping=False)  # rigid pays per switch

    def run():
        rows = []
        for kind in (NoCKind.SYSTOLIC, NoCKind.TREE, NoCKind.CROSSBAR):
            accel = edge(noc_kind=kind)
            cost = cost_la_pair(cfg, base(), accel, options)
            rows.append((kind.value, cost.total_cycles))
        return rows

    rows = benchmark(run)
    report_printer(
        format_table(
            ["NoC", "Base L-A cycles"],
            [(k, format_float(c, 3)) for k, c in rows],
            title="Ablation: NoC topology (rigid array, BERT-512, edge)",
        )
    )
    by = dict(rows)
    assert by["crossbar"] <= by["tree"] <= by["systolic"]


def test_ablation_spill_accounting(benchmark, report_printer):
    """Strict reuse-based spill vs the paper's one-extra-pass reading."""
    cfg = model_config("xlm", seq=65536)
    from repro.arch.presets import cloud

    accel = cloud()

    def run():
        strict = cost_la_pair(
            cfg, flat_r(256), accel,
            PerfOptions(spill_extra_pass_only=False),
        )
        lenient = cost_la_pair(
            cfg, flat_r(256), accel,
            PerfOptions(spill_extra_pass_only=True),
        )
        return strict, lenient

    strict, lenient = benchmark(run)
    report_printer(
        format_table(
            ["Spill model", "Util", "DRAM (GB)"],
            [
                ("strict (reuse-based)", format_float(strict.utilization),
                 format_float(strict.dram_bytes / 1e9, 1)),
                ("lenient (one extra pass)",
                 format_float(lenient.utilization),
                 format_float(lenient.dram_bytes / 1e9, 1)),
            ],
            title="Ablation: partial-staging accounting (XLM-64K, cloud)",
        )
    )
    # The lenient model can only flatter a spilled configuration.
    assert lenient.dram_bytes <= strict.dram_bytes
    assert lenient.utilization >= strict.utilization - 1e-9


def test_ablation_interleaving(benchmark, report_printer):
    """Fused/interleaved vs sequential execution at equal granularity.

    Isolates FLAT's interleaving benefit from its granularity benefit:
    same H-granularity tile, with and without fusion.
    """
    cfg = model_config("bert", seq=4096)
    accel = edge().with_scratchpad_bytes(256 * 1024 * 1024)

    def run():
        from repro.core.dataflow import base_x, flat_x

        seq_cost = cost_la_pair(cfg, base_x(Granularity.H), accel)
        fused_cost = cost_la_pair(cfg, flat_x(Granularity.H), accel)
        return seq_cost, fused_cost

    seq_cost, fused_cost = benchmark(run)
    report_printer(
        format_table(
            ["Execution", "Util", "Cycles"],
            [
                ("sequential (Base-H)", format_float(seq_cost.utilization),
                 format_float(seq_cost.total_cycles, 3)),
                ("interleaved (FLAT-H)",
                 format_float(fused_cost.utilization),
                 format_float(fused_cost.total_cycles, 3)),
            ],
            title="Ablation: interleaving at fixed granularity",
        )
    )
    assert fused_cost.total_cycles <= seq_cost.total_cycles


def test_ablation_online_softmax_extension(benchmark, report_printer):
    """The beyond-paper extension: tiling the key dimension too.

    FLAT's row granularity keeps an O(R*N) intermediate; the online
    variant cuts it to O(R*C) while remaining exact.
    """
    x = AttentionInputs.random(2, 2, 64, 64, 8, seed=7)

    def run():
        row = flat_attention(x, granularity=Granularity.R, rows=8)
        online = flat_attention_online(x, rows=8, cols=16)
        return row, online

    row, online = benchmark(run)
    report_printer(
        format_table(
            ["Executor", "Peak live elements", "Off-chip reads"],
            [
                ("FLAT row-granular", row.peak_live_elements,
                 row.traffic.offchip_read_elements),
                ("online-softmax (ext.)", online.peak_live_elements,
                 online.traffic.offchip_read_elements),
            ],
            title="Ablation: online-softmax extension footprint",
        )
    )
    assert online.peak_live_elements < row.peak_live_elements
    import numpy as np

    np.testing.assert_allclose(online.output, row.output, rtol=1e-9)
