"""Benchmarks for the system-level extension experiments.

* ``ext-scaleout`` — the two-level multi-chip scale-out DSE.
* ``ext-quant`` — FLAT x 8-bit quantization.
* ``ext-batch`` — the section 2.2 batch lever, measured.
* ``ext-hierarchy`` — a second on-chip tier (section 3.1's claim).
"""

from repro.experiments import ext_batch, ext_hierarchy, ext_quant, ext_scaleout


def test_scaleout(benchmark, report_printer):
    rows = benchmark.pedantic(
        lambda: ext_scaleout.run(chip_counts=(8, 16, 32, 64)),
        rounds=1, iterations=1,
    )
    report_printer(ext_scaleout.format_report(rows))
    # The unfused baseline stays channel-pinned on every shard; the
    # two-level DSE keeps converting chips into throughput until the
    # fabric takes over.
    assert all(r.unfused_regime == "memory" for r in rows)
    assert rows[-1].tops > 2 * rows[0].tops
    assert rows[-1].regime == "fabric"
    benchmark.extra_info["tops_64_chips"] = round(rows[-1].tops, 1)


def test_quantization(benchmark, report_printer):
    rows = benchmark.pedantic(ext_quant.run, rounds=1, iterations=1)
    report_printer(ext_quant.format_report(rows))
    r16, r8 = rows
    assert r8.base_util > r16.base_util          # quantization helps Base
    assert r8.flat_speedup > 1.5                 # FLAT still wins at 8-bit
    assert r8.flat_footprint_bytes < r16.flat_footprint_bytes


def test_batch_lever(benchmark, report_printer):
    rows = benchmark.pedantic(ext_batch.run, rounds=1, iterations=1)
    report_printer(ext_batch.format_report(rows))
    assert rows[-1].projection_util > 1.5 * rows[0].projection_util
    la = [r.la_util for r in rows]
    assert max(la) - min(la) < 0.05


def test_memory_hierarchy(benchmark, report_printer):
    rows = benchmark.pedantic(ext_hierarchy.run, rounds=1, iterations=1)
    report_printer(ext_hierarchy.format_report(rows))
    no_tier = rows[0]
    biggest = rows[-1]
    # The tier rescues FLAT at 64K on the edge buffer; Base barely moves.
    assert biggest.flat_util > no_tier.flat_util + 0.25
    assert abs(biggest.base_util - no_tier.base_util) < 0.1
    benchmark.extra_info["flat_util_with_tier"] = round(biggest.flat_util, 3)
