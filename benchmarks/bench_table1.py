"""Benchmark: regenerate Table 1 (staging buffer requirements)."""

from repro.experiments import table1


def test_table1(benchmark, report_printer):
    rows = benchmark(table1.run)
    report_printer(table1.format_report(rows))

    cells = {(r.heads, r.seq): r for r in rows}
    mb = 1024 * 1024
    # Paper cells: K/Q/V/O grows linearly and ignores heads; L/A grows
    # quadratically and explodes with heads.
    assert cells[(1, 512)].qkvo_bytes == 4 * mb
    assert cells[(1, 512)].la_bytes == int(2.5 * mb)
    assert cells[(16, 512)].la_bytes == 10 * mb
    assert cells[(16, 14336)].la_bytes > 6 * 1024 ** 3
    benchmark.extra_info["la_16h_14k_gb"] = round(
        cells[(16, 14336)].la_bytes / 1024 ** 3, 2
    )
