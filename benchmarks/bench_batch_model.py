"""Benchmark: vectorized grid scoring vs the scalar per-candidate loop.

Scores the full exhaustive-staging candidate grid twice — once with a
plain Python loop over ``cost_scope`` (what the engine's evaluation
stage did before the batch backend) and once with
:func:`repro.core.batch.evaluate_grid` — and asserts the acceptance
criteria of the batch-backend PR:

* bit-for-bit identical objective scores and argmin on every point,
* >= 5x wall-clock speedup for the vectorized pass,
* a ``run_search`` through the engine exercises the backend
  (``SearchStats.batch_evaluations`` covers the grid), so the
  conftest's ``BENCH_pipeline.json`` artifact records real totals.

``BENCH_BATCH_SEQ`` shrinks the workload for CI smoke runs; the
default is the paper's bandwidth-bound regime.
"""

import os
import time

from repro.arch.presets import edge
from repro.core.batch import best_index, evaluate_grid
from repro.core.dse import Objective, SearchSpace, enumerate_dataflows, search
from repro.core.engine import EngineOptions, clear_evaluation_cache
from repro.core.perf import cost_scope
from repro.core.tiling import choose_l2_tile
from repro.energy.model import energy_report
from repro.models.configs import model_config
from repro.ops.attention import Scope

OBJECTIVES = (Objective.RUNTIME, Objective.ENERGY)


def _clear_tile_caches():
    """Cold-start both paths: they share the lru-cached tile chooser."""
    choose_l2_tile.cache_clear()


def _scalar_scores(cfg, scope, accel, dataflows, objective):
    scores = []
    for df in dataflows:
        cost = cost_scope(cfg, scope, accel, df)
        energy = (
            energy_report(cost.counts)
            if objective in (Objective.ENERGY, Objective.EDP)
            else None
        )
        scores.append(objective.score(cost, energy))
    return scores


def test_batch_vs_scalar_speedup(benchmark, report_printer):
    cfg = model_config("bert", seq=int(os.environ.get("BENCH_BATCH_SEQ",
                                                      "4096")))
    accel = edge()
    scope = Scope.BLOCK
    space = SearchSpace(exhaustive_staging=True)
    dataflows = list(enumerate_dataflows(cfg, accel, space))

    _clear_tile_caches()
    t0 = time.perf_counter()
    scalar = {
        obj: _scalar_scores(cfg, scope, accel, dataflows, obj)
        for obj in OBJECTIVES
    }
    scalar_s = time.perf_counter() - t0

    _clear_tile_caches()
    t0 = time.perf_counter()
    grid = benchmark.pedantic(
        lambda: evaluate_grid(cfg, scope, accel, dataflows),
        rounds=1, iterations=1,
    )
    vectorized = {obj: grid.objective_scores(obj) for obj in OBJECTIVES}
    batch_s = time.perf_counter() - t0

    # Exact agreement: every score, and the enumeration-order argmin.
    for obj in OBJECTIVES:
        assert [float(s) for s in vectorized[obj]] == scalar[obj], obj
        first_min = min(range(len(dataflows)),
                        key=lambda i: (scalar[obj][i], i))
        assert best_index(vectorized[obj]) == first_min, obj

    # An engine search drives the backend end-to-end and leaves real
    # totals in search_totals() for the BENCH_pipeline.json artifact.
    # candidates=False: this benchmark isolates the batch backend on
    # the full grid; the generated front end (which batch-scores only
    # the families that survive its bounds) has its own benchmark in
    # bench_candidates.py.
    clear_evaluation_cache()
    res = search(cfg, accel, scope=scope, space=space,
                 engine=EngineOptions(jobs=1, cache_size=0,
                                      candidates=False),
                 retain_points=False)
    assert res.stats.batch_evaluations == res.stats.enumerated
    assert float(res.best.cost.total_cycles) == min(
        scalar[Objective.RUNTIME]
    )

    lines = [
        f"grid: {len(dataflows)} candidates x {len(OBJECTIVES)} objectives "
        f"(seq={cfg.seq_q})",
        f"scalar loop : {scalar_s * 1e3:9.1f} ms",
        f"batch pass  : {batch_s * 1e3:9.1f} ms "
        f"({scalar_s / batch_s:.1f}x speedup)",
        f"engine stats: {res.stats}",
    ]
    report_printer("\n".join(lines))

    assert scalar_s >= 5.0 * batch_s, (
        f"batch backend only {scalar_s / batch_s:.2f}x faster"
    )
