"""Benchmark: regenerate Figure 8 (utilization vs buffer size).

Panel (a): BERT on the edge platform; panel (b): XLM on the cloud
platform.  Reduced grids keep the benchmark under a minute; the full
paper grid is one function call away
(``fig8.run(platform=..., seqs=..., buffer_sizes=None)``).
"""

import pytest

from repro.experiments import fig8
from repro.ops.attention import Scope

KB = 1024
_BUFFERS = tuple(kb * KB for kb in (20, 128, 512, 4096, 32768,
                                    65536, 2 * 1024 * 1024))


def _cells_by(cells):
    return {(c.dataflow_name, c.buffer_bytes): c for c in cells}


def test_fig8a_edge_bert(benchmark, report_printer):
    cells = benchmark.pedantic(
        lambda: fig8.run(
            platform="edge", seqs=(512, 65536), scopes=(Scope.LA,),
            buffer_sizes=_BUFFERS,
        ),
        rounds=1, iterations=1,
    )
    report_printer(fig8.format_report(cells, platform="edge/BERT"))

    by = _cells_by([c for c in cells if c.seq == 512])
    # Base-M dips below Base at small buffers, crosses above at 2 GB.
    assert by[("Base-M", 128 * KB)].utilization < \
        by[("Base", 128 * KB)].utilization
    assert by[("Base-M", 2 * 1024 * 1024 * KB)].utilization > \
        by[("Base", 2 * 1024 * 1024 * KB)].utilization
    # FLAT-R reaches near-cap at the default 512 KB; Base needs more.
    flat_r_name = next(n for n, _ in by if n.startswith("FLAT-R"))
    assert by[(flat_r_name, 512 * KB)].utilization > 0.9
    assert by[("Base-opt", 128 * KB)].utilization < 0.7
    # FLAT-opt dominates Base-opt everywhere.
    for buf in _BUFFERS:
        assert by[("FLAT-opt", buf)].utilization >= \
            by[("Base-opt", buf)].utilization - 1e-9

    by64 = _cells_by([c for c in cells if c.seq == 65536])
    # At 64K only FLAT-R approaches the cap within the sweep.
    assert by64[(flat_r_name, 65536 * KB)].utilization > 0.9
    assert by64[("Base-opt", 65536 * KB)].utilization < 0.7
    benchmark.extra_info["flat_r_util_512kb"] = round(
        by[(flat_r_name, 512 * KB)].utilization, 3
    )


def test_fig8b_cloud_xlm(benchmark, report_printer):
    cells = benchmark.pedantic(
        lambda: fig8.run(
            platform="cloud", seqs=(16384,), scopes=(Scope.LA, Scope.BLOCK),
            buffer_sizes=_BUFFERS,
        ),
        rounds=1, iterations=1,
    )
    report_printer(fig8.format_report(cells, platform="cloud/XLM"))

    la = _cells_by([c for c in cells if c.scope == "L-A"])
    # Paper: beyond 16K "most Base-X has Util lower than 0.4" on cloud.
    for name in ("Base", "Base-M", "Base-B", "Base-H"):
        assert la[(name, 512 * KB)].utilization < 0.4
    # FLAT-opt clearly above every baseline at the default 32 MB.
    default = 32 * 1024 * KB
    closest = min(_BUFFERS, key=lambda b: abs(b - default))
    assert la[("FLAT-opt", closest)].utilization > \
        2 * la[("Base-opt", closest)].utilization
