"""Benchmark: regenerate Figure 2 (rooflines and the batch lever)."""

from repro.experiments import fig2


def test_fig2(benchmark, report_printer):
    report = benchmark(fig2.run)
    report_printer(fig2.format_report(report))

    points = {p.name: p for p in report.panel_a}
    # Intensity ordering CONV > FC > L/A, and the baseline dataflow
    # degrades L/A below the compute roof.
    assert (
        points["CONV"].intensity_flops_per_byte
        > points["FC"].intensity_flops_per_byte
        > points["L/A (algorithmic)"].intensity_flops_per_byte
    )
    assert points["L/A (Base dataflow)"].peak_fraction < 1.0
    # Batch raises FC but leaves L/A flat.
    fc = [r[1].peak_fraction for r in report.panel_b]
    la = [r[2].peak_fraction for r in report.panel_b]
    assert fc[-1] > 2 * fc[0]
    assert abs(la[-1] - la[0]) < 1e-9
    # The overhead of staging: the L/A footprint dwarfs the buffer.
    assert report.la_footprint_bytes > 100 * report.sg_bytes
    benchmark.extra_info["base_la_peak_fraction"] = round(
        points["L/A (Base dataflow)"].peak_fraction, 3
    )
