"""Benchmark: continuous prefill+decode batching on the decode tier.

Drives :func:`repro.sim.batching.run_serving` — the request-level
continuous-batching layer over the tile engine — with a >= 500-request
mixed trace (chunked prefills interleaved with piggybacked decodes) and
asserts the decode PR's acceptance criteria:

* every request completes and the TTFT / TPOT p99 tails stay under SLA
  bounds (milliseconds at the accelerator's clock),
* at ``kv_len`` >= 16384 the best variant-enabled dataflow beats the
  unfused baseline by >= 1.5x on steady-state TPOT (a saturated
  decode-only batch, the regime continuous batching converges to), and
* the same ordering — every fused variant at or under the unfused
  baseline — holds inside the mixed serving run itself.

The platform is a *decode tier*: the edge die re-provisioned with
HBM-class off-chip bandwidth (decode streams the whole KV cache per
token, so serving parts are bandwidth-rich) and a right-sized vector
SFU (32 elements/cycle) instead of the stock presets' PE-array-wide
SFU.  On the stock presets the softmax serial term is fully hidden and
every variant ties — see ``docs/decode.md``; the tier makes the term
honest rather than inflating it.

Knobs for CI smoke runs: ``BENCH_DECODE_REQUESTS`` (default 500),
``BENCH_DECODE_MIN_WIN`` (default 1.5), ``BENCH_DECODE_TTFT_P99_MS``
(default 60), ``BENCH_DECODE_TPOT_P99_MS`` (default 4).  Measured
numbers land on this benchmark's ``BENCH_pipeline.json`` row via
``record_serving``.
"""

import os
from dataclasses import replace

from repro.arch.memory import OffChipSpec
from repro.arch.presets import get_platform
from repro.arch.sfu import SFUSpec
from repro.core.dataflow import AttentionVariant, Granularity, base_x, flat_r
from repro.models.configs import model_config
from repro.sim.batching import (
    BatchingPolicy,
    run_serving,
    step_passes,
    synthetic_trace,
)
from repro.sim.engine import simulate

STEADY_KV = 16384
STEADY_BATCH = 8


def decode_tier():
    """The decode-serving accelerator: HBM bandwidth, right-sized SFU."""
    edge = get_platform("edge")
    return replace(
        edge,
        name="edge-decode-tier",
        offchip=OffChipSpec(bandwidth_bytes_per_sec=2000e9),
        sfu=SFUSpec(
            elements_per_cycle=32,
            softmax_passes=edge.sfu.softmax_passes,
        ),
    )


def _competitors():
    return (
        base_x(Granularity.B),
        flat_r(64),
        flat_r(64, variant=AttentionVariant.FLASH_D),
        flat_r(64, variant=AttentionVariant.FUSEMAX),
    )


def _steady_tpot(cfg, dataflow, accel):
    """Steady-state TPOT: one saturated decode-only step, per token."""
    passes = step_passes(
        None, [STEADY_KV] * STEADY_BATCH, cfg, dataflow, accel
    )
    return simulate(passes, accel).total_cycles / STEADY_BATCH


def test_decode_serving_sla_and_variant_win(
    benchmark, report_printer, record_serving
):
    total = int(os.environ.get("BENCH_DECODE_REQUESTS", "500"))
    min_win = float(os.environ.get("BENCH_DECODE_MIN_WIN", "1.5"))
    ttft_bound_ms = float(os.environ.get("BENCH_DECODE_TTFT_P99_MS", "60"))
    tpot_bound_ms = float(os.environ.get("BENCH_DECODE_TPOT_P99_MS", "4"))
    assert total >= 500, "acceptance floor: >= 500 mixed requests"

    accel = decode_tier()
    cfg = model_config("xlm", seq=1024)
    policy = BatchingPolicy(prefill_chunk=512, max_decode_batch=16)
    trace = synthetic_trace(
        total, seed=7, mean_interarrival_cycles=8e6,
        prompt_range=(128, 2048), output_range=(16, 128),
    )
    serving_df = flat_r(64, variant=AttentionVariant.FUSEMAX)

    report = benchmark.pedantic(
        lambda: run_serving(trace, cfg, serving_df, accel, policy),
        rounds=1, iterations=1,
    )

    to_ms = 1e3 / accel.frequency_hz
    ttft_p99_ms = report.ttft_p99 * to_ms
    tpot_p99_ms = report.tpot_p99 * to_ms

    # Steady-state decode TPOT at the acceptance KV length, per dataflow.
    steady = {
        df.name: _steady_tpot(cfg, df, accel) for df in _competitors()
    }
    unfused_tpot = steady["Base-B"]
    best_name = min(
        (n for n in steady if n != "Base-B"), key=steady.__getitem__
    )
    win = unfused_tpot / steady[best_name]

    # The ordering also holds inside the mixed continuous-batching run.
    mixed_trace = synthetic_trace(
        48, seed=11, mean_interarrival_cycles=60_000.0,
        prompt_range=(512, 1024), output_range=(16, 48),
    )
    mixed = {
        df.name: run_serving(
            mixed_trace, cfg, df, accel, policy
        ).tpot_p50
        for df in _competitors()
    }

    report_printer("\n".join(
        [
            f"requests: {report.completed} mixed "
            f"({report.steps} engine steps, "
            f"{report.makespan_cycles / 1e6:.1f} Mcycles makespan)",
            f"TTFT: p50 {report.ttft_p50 * to_ms:.3f} ms, "
            f"p99 {ttft_p99_ms:.3f} ms (bound {ttft_bound_ms} ms)",
            f"TPOT: p50 {report.tpot_p50 * to_ms:.3f} ms, "
            f"p99 {tpot_p99_ms:.3f} ms (bound {tpot_bound_ms} ms)",
            f"throughput: {report.tokens_per_kilocycle:.3f} tokens/kcycle",
            f"steady-state TPOT @ kv={STEADY_KV} (cycles/token):",
        ]
        + [f"  {name:18s} {cycles:10.0f}" for name, cycles in steady.items()]
        + [f"variant win: {win:.2f}x ({best_name} vs Base-B, "
           f"floor {min_win}x)"]
    ))

    assert report.completed == total
    assert ttft_p99_ms <= ttft_bound_ms, (
        f"TTFT p99 {ttft_p99_ms:.3f} ms exceeds {ttft_bound_ms} ms"
    )
    assert tpot_p99_ms <= tpot_bound_ms, (
        f"TPOT p99 {tpot_p99_ms:.3f} ms exceeds {tpot_bound_ms} ms"
    )
    assert win >= min_win, (
        f"best variant {best_name} wins only {win:.2f}x over the "
        f"unfused baseline at kv={STEADY_KV}"
    )
    for name, tpot_p50 in mixed.items():
        if name != "Base-B":
            assert tpot_p50 <= mixed["Base-B"] * 1.001, (
                f"{name} loses to the unfused baseline in the mixed run"
            )

    record_serving(
        qps=report.tokens_per_kilocycle * accel.frequency_hz / 1e3,
        p50_ms=report.tpot_p50 * to_ms,
        p99_ms=tpot_p99_ms,
        coalesce_ratio=(
            sum(m.output_tokens for m in report.metrics) / report.steps
        ),
        ttft_p50_ms=report.ttft_p50 * to_ms,
        ttft_p99_ms=ttft_p99_ms,
        steady_tpot_cycles=steady,
        variant_win=win,
        best_variant=best_name,
    )
