"""Benchmark: regenerate Figure 12(a) (headline speedups & energy).

The full grid is 5 models x 5 sequence lengths x 2 platforms; each cell
runs three DSEs at model scope.
"""

from repro.experiments import fig12


def test_fig12a_speedup_grid(benchmark, report_printer):
    rows = benchmark.pedantic(
        fig12.run_speedup_grid, rounds=1, iterations=1
    )
    report_printer(fig12.format_speedup_report(rows))

    # ATTACC never loses: its search space is a superset.
    assert all(r.speedup_vs_flex >= 1.0 - 1e-9 for r in rows)
    assert all(r.speedup_vs_flex_m >= r.speedup_vs_flex - 1e-9 for r in rows)
    # Energy ratios are mostly below 1, but runtime-optimal points may
    # spend extra energy (paper section 6.3: "FLAT-opts are optimal
    # points maximizing Util, which could take larger energy").
    assert all(r.energy_ratio_vs_flex <= 1.25 for r in rows)
    assert sum(r.energy_ratio_vs_flex < 1.0 for r in rows) > len(rows) / 2

    # On cloud, every model sees a substantial speedup at some sequence
    # length (the quadratic intermediate progressively dominates until
    # the staging tiles outgrow the 32 MB buffer).
    for model in {r.model for r in rows}:
        cloud_rows = [
            r for r in rows if r.platform == "cloud" and r.model == model
        ]
        assert max(r.speedup_vs_flex_m for r in cloud_rows) > 1.5

    # Cloud headline: substantial average speedup and energy saving
    # (paper: 2.57x / 1.65x and 0.28 / 0.45).
    cloud_avg = fig12.averages(rows, "cloud")
    assert cloud_avg[0] > 1.5 and cloud_avg[1] > 1.3
    assert cloud_avg[2] < 0.9 and cloud_avg[3] < 0.9
    edge_avg = fig12.averages(rows, "edge")
    assert edge_avg[0] >= 1.0 and edge_avg[2] <= 1.0

    benchmark.extra_info["cloud_avg_speedup_vs_flexm"] = round(cloud_avg[0], 2)
    benchmark.extra_info["cloud_avg_speedup_vs_flex"] = round(cloud_avg[1], 2)
    benchmark.extra_info["edge_avg_speedup_vs_flexm"] = round(edge_avg[0], 2)
    benchmark.extra_info["cloud_avg_energy_ratio"] = round(cloud_avg[2], 2)
