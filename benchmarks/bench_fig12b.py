"""Benchmark: regenerate Figure 12(b) (required off-chip bandwidth)."""

from repro.experiments import fig12

_SEQS = (2048, 8192, 32768, 131072, 524288)


def test_fig12b_bw_requirement(benchmark, report_printer):
    rows = benchmark.pedantic(
        lambda: fig12.run_bw_requirement(seqs=_SEQS), rounds=1, iterations=1
    )
    report_printer(fig12.format_bw_report(rows))

    def req(seq, accel):
        r = next(x for x in rows if x.seq == seq and x.accelerator == accel)
        return r.required_gbps

    # ATTACC's requirement falls to a minimum around 4-8K (operational
    # intensity grows with N), then rises once the K/V staging no longer
    # fits the 32 MB buffer — the paper's U shape.
    att = [req(s, "ATTACC") for s in _SEQS]
    assert all(v is not None for v in att)
    assert att[1] < att[0]
    assert att[1] < att[2] < att[3]

    # The headline reduction: ATTACC needs an order of magnitude less
    # bandwidth than the unfused baselines over the mid range (paper:
    # 88% / 82% average reduction on cloud).
    reductions = []
    for seq in (8192, 32768, 131072):
        for name in ("FlexAccel", "FlexAccel-M"):
            baseline = req(seq, name)
            if baseline is not None:
                reductions.append(1.0 - req(seq, "ATTACC") / baseline)
    assert reductions and min(reductions) > 0.5
    avg_reduction = sum(reductions) / len(reductions)
    assert avg_reduction > 0.75
    benchmark.extra_info["avg_bw_reduction"] = round(avg_reduction, 3)
    benchmark.extra_info["attacc_gbps_by_seq"] = {
        str(s): round(v, 1) for s, v in zip(_SEQS, att)
    }
