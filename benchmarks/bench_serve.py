"""Benchmark: the DSE service under mixed concurrent load.

Fires >= 1000 mixed queries (cost lookups, full DSE searches, dataflow
sweeps) at a live in-process daemon from several client connections and
asserts the serving PR's acceptance criteria:

* served throughput is >= 3x the serial per-request baseline,
* the p99 response latency stays under an SLA bound,
* the coalescing scheduler actually merged work: at least one
  multi-request ``evaluate_grid`` call (sweep chunks land in one
  micro-batch) and warm-path savings (memo hits) > 0,
* every served response is byte-identical to the direct in-process
  answer for the same request,
* the scheduler's work accounting balances:
  ``requests - memo_hits - coalesced - shed - expired == evaluations``.

The baseline models what exists without the daemon: each query pays a
cold engine (one CLI process per query), simulated by clearing the
evaluation LRU before every request.  It is *generous* to the baseline
— a real process-per-query run would additionally pay interpreter
startup and imports (~100x the evaluation itself).

Knobs for CI smoke runs: ``BENCH_SERVE_QUERIES`` (default 1200),
``BENCH_SERVE_MIN_SPEEDUP`` (default 3.0), ``BENCH_SERVE_P99_MS``
(default 250).  The measured numbers are recorded on this benchmark's
trajectory row (schema v3 serving fields) via ``record_serving``.
"""

import os
import threading
import time

from repro.core.engine import clear_evaluation_cache
from repro.serve import (
    SchedulerConfig,
    ServeClient,
    ServerThread,
    answer_direct,
    encode_line,
)

CLIENTS = 4

_SWEEP_DATAFLOWS = (
    "base", "base-h", "flat-r2", "flat-r4", "flat-r8",
    "flat-r16", "flat-r32", "flat-r64", "flat-r128", "flat-r256",
)
_COST_KEYS = tuple(
    (model, seq, dataflow)
    for model, seq in (("bert", 512), ("bert", 2048), ("xlm", 1024),
                       ("trxl", 512), ("t5", 1024), ("flaubert", 512))
    for dataflow in ("base", "flat-r32", "flat-r64", "flat-r128")
)
_SEARCH_KEYS = (
    ("bert", 512, "L-A"), ("bert", 2048, "L-A"), ("bert", 1024, "Model"),
    ("xlm", 512, "L-A"), ("xlm", 1024, "L-A"), ("trxl", 512, "L-A"),
    ("t5", 1024, "L-A"), ("flaubert", 512, "Model"),
)


def _request(index):
    """Deterministic mixed workload: mostly repeated cost lookups (the
    memo/coalescing case), every 4th a search, every 50th a sweep."""
    if index % 50 == 7:
        model, seq = (("bert", 512), ("xlm", 1024))[index % 2]
        return {
            "op": "sweep",
            "id": f"r{index}",
            "requests": [
                {"op": "cost", "model": model, "seq": seq, "batch": 8,
                 "dataflow": dataflow}
                for dataflow in _SWEEP_DATAFLOWS
            ],
        }
    if index % 4 == 1:
        model, seq, scope = _SEARCH_KEYS[index % len(_SEARCH_KEYS)]
        return {"op": "search", "id": f"r{index}", "model": model,
                "seq": seq, "batch": 8, "scope": scope}
    model, seq, dataflow = _COST_KEYS[index % len(_COST_KEYS)]
    return {"op": "cost", "id": f"r{index}", "model": model, "seq": seq,
            "batch": 8, "dataflow": dataflow}


def _serial_baseline(requests):
    """Answer every request on a cold engine, one at a time."""
    answers = {}
    start = time.perf_counter()
    for req in requests:
        clear_evaluation_cache()
        answers[req["id"]] = encode_line(answer_direct(req))
    return time.perf_counter() - start, answers


def _served_load(host, port, requests):
    """Drive the daemon from ``CLIENTS`` connections; per-request wall
    times are measured client-side (they include the coalescing
    window, i.e. what a caller actually observes)."""
    answers = {}
    latencies = []
    errors = []
    lock = threading.Lock()

    def _client(shard):
        try:
            with ServeClient(host, port) as client:
                for req in shard:
                    t0 = time.perf_counter()
                    response = client.request(req)
                    wall = time.perf_counter() - t0
                    with lock:
                        answers[req["id"]] = encode_line(response)
                        latencies.append(wall)
        except Exception as exc:  # noqa: BLE001 - surfaced to the test
            with lock:
                errors.append(exc)

    shards = [requests[i::CLIENTS] for i in range(CLIENTS)]
    threads = [
        threading.Thread(target=_client, args=(shard,), daemon=True)
        for shard in shards
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    return wall, answers, sorted(latencies)


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1,
                max(0, int(fraction * len(sorted_values)) - 1))
    return sorted_values[index]


def test_serve_load_speedup_and_sla(
    benchmark, report_printer, record_serving, monkeypatch
):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    total = int(os.environ.get("BENCH_SERVE_QUERIES", "1200"))
    min_speedup = float(os.environ.get("BENCH_SERVE_MIN_SPEEDUP", "3.0"))
    p99_bound_ms = float(os.environ.get("BENCH_SERVE_P99_MS", "250"))
    requests = [_request(i) for i in range(total)]

    baseline_s, direct_answers = _serial_baseline(requests)

    clear_evaluation_cache()  # the daemon starts as cold as the baseline
    config = SchedulerConfig(window_ms=1.0)
    with ServerThread(config) as (host, port):
        served_s, served_answers, latencies = benchmark.pedantic(
            lambda: _served_load(host, port, requests),
            rounds=1, iterations=1,
        )
        with ServeClient(host, port) as client:
            stats = client.stats()["scheduler"]

    p50_ms = _percentile(latencies, 0.50) * 1e3
    p99_ms = _percentile(latencies, 0.99) * 1e3
    qps = total / served_s
    speedup = baseline_s / served_s
    coalesce_ratio = stats["requests"] / max(1, stats["evaluations"])
    report_printer("\n".join([
        f"queries: {total} mixed ({CLIENTS} client connections)",
        f"serial baseline : {baseline_s * 1e3:9.1f} ms",
        f"served          : {served_s * 1e3:9.1f} ms "
        f"({speedup:.1f}x, {qps:.0f} qps)",
        f"latency         : p50 {p50_ms:.2f} ms, p99 {p99_ms:.2f} ms "
        f"(bound {p99_bound_ms:.0f} ms)",
        f"scheduler       : {stats['requests']} submits, "
        f"{stats['evaluations']} evaluations, "
        f"{stats['memo_hits']} memo hits, {stats['coalesced']} coalesced, "
        f"{stats['grid_calls']} grid calls ({stats['grid_rows']} rows)",
    ]))

    # Byte-identical to the direct reference path, response by response.
    assert set(served_answers) == set(direct_answers)
    for req_id, payload in direct_answers.items():
        assert served_answers[req_id] == payload, req_id

    # The coalescer really batched: sweep chunks became multi-row grid
    # calls, and the shared warm path absorbed the repeats.
    assert stats["grid_calls"] >= 1
    assert stats["grid_rows"] > stats["grid_calls"]
    assert stats["memo_hits"] > 0
    assert stats["shed"] == 0 and stats["deadline_expired"] == 0
    # Work accounting balances after drain-level quiescence.
    assert (
        stats["requests"] - stats["memo_hits"] - stats["coalesced"]
        - stats["shed"] - stats["deadline_expired"]
        == stats["evaluations"]
    )

    # The SLA: throughput versus the per-request baseline, and tail
    # latency under concurrent load.
    assert speedup >= min_speedup, (
        f"served only {speedup:.2f}x the serial baseline"
    )
    assert p99_ms <= p99_bound_ms, (
        f"p99 {p99_ms:.1f} ms exceeds {p99_bound_ms:.0f} ms"
    )

    record_serving(
        qps=qps, p50_ms=p50_ms, p99_ms=p99_ms,
        coalesce_ratio=coalesce_ratio,
        speedup_vs_serial=speedup,
        scheduler=dict(stats),
    )
