"""Benchmark: hierarchical scale-out DSE vs the exhaustive cross-product.

Runs the fig8-style chip-count sweep of ``ext-scaleout`` (one serving
workload, 8-64 chips) twice: with the naive outer level (every
partition x schedule point pays its inner per-chip search) and with
the two-level branch-and-bound (outer points bound-gated before any
inner search, best-bound-first, warm-chained across chip counts).
Asserts the acceptance criteria of the scale-out PR:

* identical winning partition, schedule, dataflow and cycle split at
  every chip count (the equivalence the CI job diffs end to end),
* >= 5x fewer inner-search invocations for the hierarchical path,
* >= 2x wall-clock speedup,
* nonzero pruning counts (the outer branch-and-bound actually fired),
  and none at all on the exhaustive reference.

The evaluation caches are cleared between the sides so nothing leaks
from one outer mode into the other's measurement.  Wall times land in
``BENCH_pipeline.json`` via the harness hook (schema v4 also lifts
``inner_searches`` / ``partitions_pruned`` per row).
"""

import os
import time

from repro.core.engine import clear_evaluation_cache, reset_search_totals
from repro.core.scaleout import (
    reset_scaleout_totals,
    scaleout_totals,
    sweep_chip_counts,
)
from repro.experiments.ext_scaleout import build_system
from repro.models.configs import model_config

CHIP_COUNTS = (8, 16, 32, 64)


def _workload():
    # BENCH_SCALEOUT_SEQ shrinks the workload for smoke runs; the
    # default is the serving-style long-sequence regime of the
    # ext-scaleout experiment.
    return model_config(
        "xlm", seq=int(os.environ.get("BENCH_SCALEOUT_SEQ", "16384")),
        batch=8,
    )


def _sweep(cfg, system, exhaustive):
    """One chip-count sweep; returns (winners, totals, wall seconds)."""
    clear_evaluation_cache()
    reset_search_totals()
    reset_scaleout_totals()
    start = time.perf_counter()
    results = sweep_chip_counts(
        cfg, system, CHIP_COUNTS, exhaustive=exhaustive
    )
    winners = [
        (
            r.chips,
            r.best.partition.label,
            r.best.schedule.value,
            r.best.dataflow,
            r.best.chip_cost.total_cycles,
            r.best.fabric_cycles,
        )
        for r in results
    ]
    return winners, scaleout_totals(), time.perf_counter() - start


def test_scaleout_pruning_speedup(benchmark, report_printer):
    cfg = _workload()
    system = build_system()

    naive_winners, naive_totals, naive_s = _sweep(cfg, system, True)
    hier_winners, hier_totals, hier_s = benchmark.pedantic(
        lambda: _sweep(cfg, system, False),
        rounds=1, iterations=1,
    )

    naive_inner = naive_totals["inner_searches"]
    hier_inner = hier_totals["inner_searches"]
    lines = [
        f"sweep: chips {CHIP_COUNTS}, "
        f"{naive_totals['outer_enumerated']} outer points",
        f"exhaustive  : {naive_s * 1e3:9.1f} ms  {naive_inner:4d} inner "
        f"searches",
        f"hierarchical: {hier_s * 1e3:9.1f} ms  {hier_inner:4d} inner "
        f"searches ({naive_s / hier_s:.1f}x wall, "
        f"{naive_inner / max(hier_inner, 1):.1f}x searches, "
        f"{hier_totals['partitions_pruned']} outer points pruned)",
    ]
    report_printer("\n".join(lines))

    # Equivalence: same winner, same cycle split, at every chip count.
    assert hier_winners == naive_winners

    # Each side accounts for every outer point it enumerated...
    for totals in (naive_totals, hier_totals):
        assert totals["outer_enumerated"] == (
            totals["outer_evaluated"] + totals["partitions_pruned"]
        )
    # ...the branch-and-bound must actually fire (and only on the
    # hierarchical side)...
    assert naive_totals["partitions_pruned"] == 0
    assert hier_totals["partitions_pruned"] > 0
    # ...avoid the work the acceptance criterion demands...
    assert naive_inner >= 5.0 * hier_inner, (
        f"hierarchical outer level only avoided "
        f"{naive_inner / max(hier_inner, 1):.2f}x inner searches"
    )
    # ...and buy the wall-clock speedup.
    assert naive_s >= 2.0 * hier_s, (
        f"hierarchical outer level only {naive_s / hier_s:.2f}x faster"
    )


def test_memo_short_circuits_repeat_sweeps(report_printer):
    """A repeated sweep answers from the winner memo, searching nothing."""
    cfg = _workload()
    system = build_system()

    cold_winners, cold_totals, cold_s = _sweep(cfg, system, False)

    # Same sweep again, caches intact: every chip count memo-hits.
    reset_scaleout_totals()
    start = time.perf_counter()
    results = sweep_chip_counts(cfg, system, CHIP_COUNTS, exhaustive=False)
    warm_s = time.perf_counter() - start
    warm_totals = scaleout_totals()
    warm_winners = [
        (
            r.chips,
            r.best.partition.label,
            r.best.schedule.value,
            r.best.dataflow,
            r.best.chip_cost.total_cycles,
            r.best.fabric_cycles,
        )
        for r in results
    ]

    report_printer(
        f"cold sweep: {cold_s * 1e3:9.1f} ms  "
        f"{cold_totals['inner_searches']:4d} inner searches\n"
        f"warm sweep: {warm_s * 1e3:9.1f} ms  "
        f"{warm_totals['memo_hits']:4d} memo hits"
    )

    # The memo short-circuits the searches; the outer grid (cheap
    # analytics) is recomputed either way, so the counters — not the
    # wall clock — are the contract here.
    assert warm_winners == cold_winners
    assert warm_totals["memo_hits"] == len(CHIP_COUNTS)
    assert warm_totals["inner_searches"] == 0
