"""Benchmark: analytic candidate generation vs enumerate-then-prune.

Runs the fig8-style buffer sweep (one workload, the exhaustive-staging
FLAT-opt space, every buffer size of Figure 8) three times: with the
full-grid front end (``candidates=False`` — enumerate, batch-score,
prune), with the generated front end (family planning plus
branch-and-bound), and with the generated front end warm-started from
each neighboring buffer size's winner.  Asserts the acceptance
criteria of the candidate-generation PR:

* identical winning dataflow and cycle count at every buffer size,
* >= 5x fewer scalar/batch cost evaluations for the generated front
  end,
* >= 2x wall-clock speedup,
* nonzero family-pruning counts (the branch-and-bound actually fired).

The evaluation caches are cleared between the sides so nothing leaks
from one front end into another's measurement.  Wall times land in
``BENCH_pipeline.json`` via the harness hook (schema v2 also lifts the
evaluation/skip counters per row).
"""

import os
import time

import pytest

from repro.arch.presets import edge
from repro.analysis.utilization import default_buffer_sizes
from repro.core.candidates import make_incumbent
from repro.core.dse import Objective, SearchSpace, search
from repro.core.engine import (
    EngineOptions,
    clear_evaluation_cache,
    reset_search_totals,
    search_totals,
)
from repro.models.configs import model_config
from repro.ops.attention import Scope

FULL_GRID = EngineOptions(jobs=1, prune=True, cache_size=8192, batch=True,
                          candidates=False)
GENERATED = EngineOptions(jobs=1, prune=True, cache_size=8192, batch=True)

# The paper's FLAT-opt DSE over the exhaustive staging product — the
# widest per-search grid the sweep experiments use.
SPACE = SearchSpace(
    allow_fused=True,
    allow_unfused=True,
    row_choices=(1, 4, 16, 64, 256, 1024, 4096, 16384),
    exhaustive_staging=True,
)


def _sweep(cfg, engine, warm):
    """One fig8 buffer sweep; returns (winners, totals, wall seconds)."""
    clear_evaluation_cache()
    reset_search_totals()
    start = time.perf_counter()
    winners = []
    incumbent = None
    for size in default_buffer_sizes():
        accel = edge().with_scratchpad_bytes(size)
        res = search(
            cfg, accel, scope=Scope.LA, objective=Objective.RUNTIME,
            space=SPACE, engine=engine, retain_points=False,
            warm_start=incumbent if warm else None,
        )
        if warm:
            incumbent = make_incumbent(res, Scope.LA, accel)
        winners.append((res.best.dataflow, res.best.cost.total_cycles))
    return winners, search_totals(), time.perf_counter() - start


def _evaluations(totals):
    return totals["evaluated"] + totals["batch_evaluations"]


def test_candidate_generation_speedup(benchmark, report_printer):
    # BENCH_CAND_SEQ shrinks the workload for CI smoke runs; the
    # default is the paper's long-sequence regime.
    cfg = model_config(
        "bert", seq=int(os.environ.get("BENCH_CAND_SEQ", "4096"))
    )

    grid_winners, grid_totals, grid_s = _sweep(cfg, FULL_GRID, warm=False)
    cold_winners, cold_totals, cold_s = _sweep(cfg, GENERATED, warm=False)
    warm_winners, warm_totals, warm_s = benchmark.pedantic(
        lambda: _sweep(cfg, GENERATED, warm=True),
        rounds=1, iterations=1,
    )

    grid_e = _evaluations(grid_totals)
    cold_e = _evaluations(cold_totals)
    warm_e = _evaluations(warm_totals)
    points = len(default_buffer_sizes())
    lines = [
        f"sweep: {points} buffer sizes x "
        f"{grid_totals['enumerated'] // max(points, 1)} candidates",
        f"full grid : {grid_s * 1e3:9.1f} ms  {grid_e:6d} evaluations",
        f"generated : {cold_s * 1e3:9.1f} ms  {cold_e:6d} evaluations "
        f"({grid_s / cold_s:.1f}x wall, {grid_e / cold_e:.1f}x evals, "
        f"{cold_totals['families_pruned']} families pruned)",
        f"warm start: {warm_s * 1e3:9.1f} ms  {warm_e:6d} evaluations "
        f"({grid_s / warm_s:.1f}x wall, {grid_e / warm_e:.1f}x evals, "
        f"{warm_totals['families_pruned']} families pruned)",
    ]
    report_printer("\n".join(lines))

    # Equivalence: same winner, same bytes, at every buffer size.
    assert cold_winners == grid_winners
    assert warm_winners == grid_winners

    # The branch-and-bound must actually fire...
    assert cold_totals["families_pruned"] > 0
    assert warm_totals["families_pruned"] > 0
    assert cold_totals["candidates_skipped"] > 0
    # ...avoid the work the acceptance criterion demands...
    assert grid_e >= 5.0 * cold_e, (
        f"generated front end only avoided {grid_e / cold_e:.2f}x "
        f"evaluations"
    )
    assert grid_e >= 5.0 * warm_e, (
        f"warm-started front end only avoided {grid_e / warm_e:.2f}x "
        f"evaluations"
    )
    # ...and buy the wall-clock speedup.
    assert grid_s >= 2.0 * cold_s, (
        f"generated front end only {grid_s / cold_s:.2f}x faster"
    )
    assert grid_s >= 2.0 * warm_s, (
        f"warm-started front end only {grid_s / warm_s:.2f}x faster"
    )


def test_plan_is_cheaper_than_enumeration(report_printer):
    """Planning the space must cost well under expanding it."""
    from repro.core.candidates import plan_candidates
    from repro.core.dse import enumerate_dataflows

    cfg = model_config(
        "bert", seq=int(os.environ.get("BENCH_CAND_SEQ", "4096"))
    )
    accel = edge()

    t0 = time.perf_counter()
    plan = plan_candidates(Objective.RUNTIME, cfg, Scope.LA, accel, SPACE)
    plan_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    n = len(list(enumerate_dataflows(cfg, accel, SPACE)))
    enum_s = time.perf_counter() - t0

    report_printer(
        f"plan: {len(plan.families)} families / {plan.total} candidates "
        f"in {plan_s * 1e6:.0f} us (grid expansion alone: "
        f"{enum_s * 1e6:.0f} us)"
    )
    assert plan.total == n
    assert plan_s < enum_s * 5, (
        "planning should be comparable to bare enumeration, it avoids "
        f"the per-candidate model entirely ({plan_s * 1e6:.0f} us vs "
        f"{enum_s * 1e6:.0f} us)"
    )
