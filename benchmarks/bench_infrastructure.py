"""Throughput benchmarks for the cost model, DSE and simulator.

These are the tooling-speed numbers a user of the library cares about:
how fast one cost evaluation is, how fast a full exhaustive DSE runs,
and how the tile-level simulator scales.
"""

from repro.arch.presets import edge
from repro.core.dataflow import flat_r
from repro.core.dse import search
from repro.core.perf import cost_la_pair, cost_scope
from repro.models.configs import model_config
from repro.ops.attention import AttentionConfig, Scope
from repro.sim.engine import simulate
from repro.sim.schedule import build_la_schedule

_EDGE = edge()


def test_single_cost_evaluation(benchmark):
    """One closed-form L-A cost evaluation (the DSE inner loop)."""
    cfg = model_config("bert", seq=4096)
    result = benchmark(cost_la_pair, cfg, flat_r(128), _EDGE)
    assert result.total_cycles > 0


def test_block_scope_evaluation(benchmark):
    """A full eight-operator block costing."""
    cfg = model_config("bert", seq=4096)
    result = benchmark(cost_scope, cfg, Scope.BLOCK, _EDGE, flat_r(128))
    assert result.utilization > 0


def test_full_dse(benchmark):
    """One exhaustive DSE (the paper's per-point search)."""
    cfg = model_config("bert", seq=4096)
    result = benchmark.pedantic(
        lambda: search(cfg, _EDGE, scope=Scope.LA), rounds=3, iterations=1
    )
    assert result.num_points > 50
    benchmark.extra_info["points_searched"] = result.num_points


def test_simulator_throughput(benchmark):
    """Tile-level simulation of a few hundred passes."""
    cfg = AttentionConfig(
        "simbench", batch=4, heads=4, d_model=256, seq_q=512, seq_kv=512,
        d_ff=1024,
    )
    schedule = build_la_schedule(cfg, flat_r(64), _EDGE)
    result = benchmark(simulate, schedule, _EDGE)
    assert result.total_cycles > 0
    benchmark.extra_info["passes"] = len(schedule)
