"""Benchmarks for the beyond-paper extension experiments.

* ``iso-area`` — the conclusion's provisioning claim, quantified.
* ``ext-online`` — the column-tiled online-softmax schedule vs FLAT.
"""

from repro.experiments import ext_online, iso_area
from repro.experiments.iso_area import optimal_split


def test_iso_area_provisioning(benchmark, report_printer):
    rows = benchmark.pedantic(iso_area.run, rounds=1, iterations=1)
    report_printer(iso_area.format_report(rows))

    best_unfused, best_flat = optimal_split(rows)
    # Same silicon -> more throughput under FLAT.
    assert best_flat.flat_tops > best_unfused.unfused_tops
    # FLAT saturates with a modest SRAM share; the unfused baseline
    # keeps gaining utilization from SRAM all the way up (it needs the
    # buffer for the quadratic intermediate).
    unfused_utils = [r.unfused_util for r in rows]
    assert unfused_utils == sorted(unfused_utils)
    flat_near_cap = [r for r in rows if r.flat_util > 0.95]
    assert flat_near_cap and min(
        r.sram_fraction for r in flat_near_cap
    ) <= 0.4
    benchmark.extra_info["flat_best_tops"] = round(best_flat.flat_tops, 2)
    benchmark.extra_info["flat_best_sram_share"] = best_flat.sram_fraction


def test_online_softmax_schedule(benchmark, report_printer):
    rows = benchmark.pedantic(ext_online.run, rounds=1, iterations=1)
    report_printer(ext_online.format_report(rows))

    # The online schedule's utilization is N-independent at fixed
    # buffer, and its footprint constant; FLAT collapses to the
    # baseline once its K/V staging outgrows 512 KB.
    online = [r.online_util for r in rows]
    assert all(u > 0.9 for u in online)
    assert max(online) - min(online) < 0.05
    footprints = {r.online_footprint_bytes for r in rows}
    assert len(footprints) == 1
    long_n = [r for r in rows if r.seq >= 16384]
    assert all(r.online_util > r.flat_util + 0.2 for r in long_n)
    short = [r for r in rows if r.seq == 512][0]
    assert abs(short.online_util - short.flat_util) < 0.1
    benchmark.extra_info["online_util_256k"] = round(rows[-1].online_util, 3)
