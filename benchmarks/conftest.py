"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
analytical cost model, times the regeneration with pytest-benchmark,
asserts the paper's qualitative claims on the produced rows, and prints
the rows themselves (run with ``-s`` to see them).

Each session additionally writes a ``BENCH_pipeline.json`` artifact —
one row per benchmark with its wall time and the DSE engine's
accumulated :func:`~repro.core.engine.search_totals` — so successive
PRs have a perf trajectory to compare against.  The path is
overridable via ``BENCH_PIPELINE_PATH``.

Schema v2 adds the candidate-generation counters: the full totals dict
(``search``) gains ``candidates_generated`` / ``candidates_skipped`` /
``families_pruned``, and the work-avoidance headline numbers are
additionally lifted to the row's top level (``evaluations`` — scalar
plus batch scoring calls — and ``candidates_skipped``) so trajectory
diffs across PRs can track pruning effectiveness without digging into
the nested totals.

Schema v3 adds *serving* fields for benchmarks that drive the DSE
service daemon (``bench_serve``): a benchmark opting in through the
:func:`record_serving` fixture gets a ``serving`` dict on its row plus
the headline numbers lifted to the top level — ``qps`` (served
throughput), ``p50_ms`` / ``p99_ms`` (response-latency percentiles)
and ``coalesce_ratio`` (requests answered per engine evaluation).
Rows of benchmarks that never touch the daemon are unchanged, and the
new fields are strictly additive, so v2 readers remain correct as
long as they treat unknown/absent fields as optional.

Schema v4 adds the multi-chip scale-out counters: every row carries
the accumulated :func:`~repro.core.scaleout.scaleout_totals` dict
(``scaleout``) with ``inner_searches`` and ``partitions_pruned``
additionally lifted to the top level, so trajectory diffs can track
the two-level DSE's work avoidance the same way they track candidate
pruning.  Rows of benchmarks that never run a scale-out search carry
zeros; the fields are strictly additive over v3.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.engine import reset_search_totals, search_totals
from repro.core.scaleout import reset_scaleout_totals, scaleout_totals

_ARTIFACT_SCHEMA = "repro-bench-trajectory/4"
_rows = []
_serving = {}


@pytest.fixture
def report_printer(request):
    """Print a report block under the current test's name."""

    def _print(text: str) -> None:
        print(f"\n===== {request.node.name} =====")
        print(text)

    return _print


@pytest.fixture
def record_serving(request):
    """Attach serving metrics to this benchmark's trajectory row (v3).

    ``bench_serve`` calls this once with its measured load numbers;
    extra keyword fields (e.g. raw scheduler counters) ride along in
    the row's ``serving`` dict.
    """

    def _record(*, qps, p50_ms, p99_ms, coalesce_ratio, **extra):
        _serving[request.node.nodeid] = {
            "qps": float(qps),
            "p50_ms": float(p50_ms),
            "p99_ms": float(p99_ms),
            "coalesce_ratio": float(coalesce_ratio),
            **extra,
        }

    return _record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Record wall time + in-process DSE search totals per benchmark.

    Search totals are per-process: a benchmark that farms experiments
    out to worker processes (``bench_pipeline``) reports near-zero
    parent-side totals but still records its wall time.
    """
    reset_search_totals()
    reset_scaleout_totals()
    start = time.perf_counter()
    yield
    totals = search_totals()
    so_totals = scaleout_totals()
    row = {
        "benchmark": item.nodeid,
        "wall_time_s": time.perf_counter() - start,
        "evaluations": (
            totals.get("evaluated", 0) + totals.get("batch_evaluations", 0)
        ),
        "candidates_skipped": totals.get("candidates_skipped", 0),
        "inner_searches": so_totals.get("inner_searches", 0),
        "partitions_pruned": so_totals.get("partitions_pruned", 0),
        "search": totals,
        "scaleout": so_totals,
    }
    serving = _serving.pop(item.nodeid, None)
    if serving is not None:
        row["serving"] = serving
        for headline in ("qps", "p50_ms", "p99_ms", "coalesce_ratio"):
            row[headline] = serving[headline]
    _rows.append(row)


def pytest_sessionfinish(session, exitstatus):
    if not _rows:
        return
    path = os.environ.get("BENCH_PIPELINE_PATH", "BENCH_pipeline.json")
    payload = {"schema": _ARTIFACT_SCHEMA, "rows": _rows}
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    except OSError:
        pass  # a read-only checkout must not fail the benchmarks
