"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
analytical cost model, times the regeneration with pytest-benchmark,
asserts the paper's qualitative claims on the produced rows, and prints
the rows themselves (run with ``-s`` to see them).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report_printer(request):
    """Print a report block under the current test's name."""

    def _print(text: str) -> None:
        print(f"\n===== {request.node.name} =====")
        print(text)

    return _print
