"""Benchmark: the parallel pipeline + persistent cross-run DSE cache.

Runs a multi-experiment subset three ways and asserts the acceptance
criteria of the pipeline PR:

* a warm-cache re-run (same cache directory, fresh worker processes)
  is >= 3x faster than the cold run,
* parallel ``run-all`` is >= 1.5x faster than the serial loop when at
  least 4 cores are available (skipped below that),
* serial, parallel and warm-cache runs produce byte-identical reports,
* the warm run's hits actually come from the persistent cache.

The subset deliberately includes fig8/fig9 pairs: their grids overlap,
so even the *cold* parallel run shares evaluations across experiments
through the on-disk store — the cross-run cache doubles as the
cross-worker one.
"""

import os
import time

from repro.core.engine import clear_evaluation_cache
from repro.experiments.pipeline import run_pipeline

SUBSET = ("fig8-edge", "fig9-edge", "fig8-cloud", "fig9-cloud")


def _run(names, workers, cache_dir):
    """One pipeline run whose cache hits can only come from disk.

    Pool workers fork from this process, so the in-memory LRU is
    dropped first; with ``workers == 1`` (inline loop) that also makes
    the serial baseline honestly cold.
    """
    clear_evaluation_cache()
    return run_pipeline(names=names, workers=workers, cache_dir=cache_dir)


def test_pipeline_warm_cache_and_parallel_speedup(
    benchmark, report_printer, tmp_path
):
    cpus = os.cpu_count() or 1
    workers = min(4, cpus)
    shared_cache = str(tmp_path / "cache")

    t0 = time.perf_counter()
    cold = _run(SUBSET, workers, shared_cache)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: _run(SUBSET, workers, shared_cache), rounds=1, iterations=1
    )
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = _run(SUBSET, 1, str(tmp_path / "serial_cache"))
    serial_s = time.perf_counter() - t0

    warm_cache = warm.aggregate_cache()
    lines = [
        f"subset: {', '.join(SUBSET)} ({workers} workers, {cpus} cores)",
        f"cold  pipeline: {cold_s * 1e3:9.1f} ms",
        f"warm  pipeline: {warm_s * 1e3:9.1f} ms "
        f"({cold_s / warm_s:.1f}x vs cold)",
        f"serial loop   : {serial_s * 1e3:9.1f} ms "
        f"({serial_s / cold_s:.1f}x vs parallel cold)",
        f"warm cache    : {warm_cache.get('hits', 0)} hits, "
        f"{warm_cache.get('misses', 0)} misses, "
        f"{warm_cache.get('corrupt', 0)} corrupt",
    ]
    report_printer("\n".join(lines))

    # Byte-identical reports across serial / parallel / cached runs.
    for serial_run, cold_run, warm_run in zip(
        serial.runs, cold.runs, warm.runs
    ):
        assert serial_run.ok and cold_run.ok and warm_run.ok
        assert serial_run.report == cold_run.report, serial_run.name
        assert serial_run.report == warm_run.report, serial_run.name

    # The warm run must be served by the persistent cache...
    assert warm_cache.get("hits", 0) > 0
    assert warm.aggregate_search()["disk_hits"] > 0
    assert warm.aggregate_search()["evaluated"] == 0
    # ...and buy the acceptance-criterion speedup.
    assert cold_s >= 3.0 * warm_s, (
        f"warm cache only {cold_s / warm_s:.2f}x faster"
    )

    # Experiment-level parallelism pays off once cores are available.
    if cpus >= 4:
        assert serial_s >= 1.5 * cold_s, (
            f"parallel run-all only {serial_s / cold_s:.2f}x faster"
        )
