"""Benchmark: regenerate Figure 9 (energy for every Figure 8 point)."""

from repro.experiments import fig9
from repro.ops.attention import Scope

KB = 1024
_BUFFERS = tuple(kb * KB for kb in (128, 512, 4096, 65536))


def test_fig9_edge_bert(benchmark, report_printer):
    cells = benchmark.pedantic(
        lambda: fig9.run(
            platform="edge", seqs=(512,), scopes=(Scope.LA,),
            buffer_sizes=_BUFFERS,
        ),
        rounds=1, iterations=1,
    )
    report_printer(fig9.format_report(cells, platform="edge/BERT"))

    by = {(c.dataflow_name, c.buffer_bytes): c for c in cells}
    # Normalization: the max of each sub-plot is 1.0.
    assert max(c.normalized_energy for c in cells) == 1.0
    # FLAT-X sits below its Base-X counterpart (saved off-chip access).
    for gran in ("B", "H"):
        for buf in _BUFFERS:
            assert by[(f"FLAT-{gran}", buf)].energy_j <= \
                by[(f"Base-{gran}", buf)].energy_j * 1.001
    # FLAT-opt saves energy vs Base-opt at the default buffer.
    assert by[("FLAT-opt", 512 * KB)].energy_j < \
        by[("Base-opt", 512 * KB)].energy_j


def test_fig9_cloud_xlm(benchmark, report_printer):
    cells = benchmark.pedantic(
        lambda: fig9.run(
            platform="cloud", seqs=(16384,), scopes=(Scope.LA,),
            buffer_sizes=_BUFFERS,
        ),
        rounds=1, iterations=1,
    )
    report_printer(fig9.format_report(cells, platform="cloud/XLM"))
    by = {(c.dataflow_name, c.buffer_bytes): c for c in cells}
    assert by[("FLAT-opt", 65536 * KB)].energy_j < \
        by[("Base-opt", 65536 * KB)].energy_j
