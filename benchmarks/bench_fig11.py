"""Benchmark: regenerate Figure 11 (latency breakdown per accelerator)."""

import pytest

from repro.experiments import fig11


@pytest.mark.parametrize("platform", ["edge", "cloud"])
def test_fig11(benchmark, report_printer, platform):
    rows = benchmark.pedantic(
        lambda: fig11.run(platform=platform, seqs=(512, 4096, 65536)),
        rounds=1, iterations=1,
    )
    report_printer(fig11.format_report(rows))

    def pick(seq, accel):
        return next(r for r in rows if r.seq == seq and
                    r.accelerator == accel)

    # FlexAccel and ATTACC share Projections and FCs; the gap is L-A.
    for seq in (512, 4096, 65536):
        flex, att = pick(seq, "FlexAccel"), pick(seq, "ATTACC")
        assert att.projection_cycles == pytest.approx(flex.projection_cycles)
        assert att.fc_cycles == pytest.approx(flex.fc_cycles)
        assert att.la_cycles <= flex.la_cycles * (1 + 1e-9)
        assert att.total_cycles >= att.ideal_cycles * 0.999

    # L-A dominance grows with sequence length (quadratic vs linear).
    base_share = [
        pick(seq, "BaseAccel").la_cycles / pick(seq, "BaseAccel").total_cycles
        for seq in (512, 4096, 65536)
    ]
    assert base_share[0] < base_share[1] < base_share[2]
    # ATTACC's 64K block improves on BaseAccel; on cloud, where the
    # baseline is bandwidth-bound, the gap is large.  On edge the
    # default 512 KB buffer cannot hold the 64K K/V staging tiles, so
    # FLAT degrades gracefully to baseline behavior (never worse).
    speedup = pick(65536, "BaseAccel").total_cycles / \
        pick(65536, "ATTACC").total_cycles
    assert speedup >= 1.0 - 1e-9
    if platform == "cloud":
        assert speedup > 1.5
    benchmark.extra_info[f"{platform}_64k_speedup_vs_baseaccel"] = round(
        speedup, 2
    )
