"""Benchmark: the DSE engine vs the naive serial full evaluation.

Runs the same exhaustive-staging sweep (one workload, two scopes,
three objectives — the shape of the fig8/fig11-style grids, which
re-visit identical design points across searches) twice: once with a
naive engine (no pruning, no cache, eager energy) and once with the
optimized engine.  Asserts the acceptance criteria of the engine PR:

* identical best dataflow and objective value on every cell,
* >= 2x wall-clock speedup for the engine,
* nonzero pruned and cache-hit counts in the reported SearchStats.
"""

import os
import time

import pytest

from repro.arch.presets import edge
from repro.core.dse import Objective, SearchSpace, search
from repro.core.engine import (
    EngineOptions,
    SearchStats,
    clear_evaluation_cache,
)
from repro.models.configs import model_config
from repro.ops.attention import Scope

# batch=False on both sides: this benchmark isolates the scalar
# engine's pruning/memoization; the vectorized backend has its own
# benchmark in bench_batch_model.py.
NAIVE = EngineOptions(jobs=1, prune=False, cache_size=0, batch=False)
FAST = EngineOptions(jobs=1, prune=True, cache_size=8192, batch=False)

SCOPES = (Scope.LA, Scope.BLOCK)
OBJECTIVES = (Objective.RUNTIME, Objective.ENERGY, Objective.EDP)


def _sweep(cfg, accel, engine, retain_points):
    """One grid: scopes x objectives over the exhaustive staging space."""
    space = SearchSpace(exhaustive_staging=True)
    cells = {}
    for scope in SCOPES:
        for objective in OBJECTIVES:
            cells[(scope, objective)] = search(
                cfg, accel, scope=scope, objective=objective, space=space,
                engine=engine, retain_points=retain_points,
            )
    return cells


def test_engine_speedup(benchmark, report_printer):
    # BENCH_DSE_SEQ shrinks the grid for CI smoke runs; the default is
    # the paper's bandwidth-bound regime where pruning bites hardest.
    cfg = model_config("bert", seq=int(os.environ.get("BENCH_DSE_SEQ",
                                                      "4096")))
    accel = edge()

    clear_evaluation_cache()
    t0 = time.perf_counter()
    naive = _sweep(cfg, accel, NAIVE, retain_points=True)
    naive_s = time.perf_counter() - t0

    clear_evaluation_cache()
    t0 = time.perf_counter()
    fast = benchmark.pedantic(
        lambda: _sweep(cfg, accel, FAST, retain_points=False),
        rounds=1, iterations=1,
    )
    fast_s = time.perf_counter() - t0

    totals = SearchStats(
        enumerated=sum(r.stats.enumerated for r in fast.values()),
        evaluated=sum(r.stats.evaluated for r in fast.values()),
        pruned=sum(r.stats.pruned for r in fast.values()),
        cache_hits=sum(r.stats.cache_hits for r in fast.values()),
        wall_time_s=sum(r.stats.wall_time_s for r in fast.values()),
        jobs=1,
    )
    lines = [
        f"grid: {len(fast)} searches x "
        f"{next(iter(fast.values())).stats.enumerated} points",
        f"naive sweep : {naive_s * 1e3:9.1f} ms",
        f"engine sweep: {fast_s * 1e3:9.1f} ms "
        f"({naive_s / fast_s:.1f}x speedup)",
        f"engine stats: {totals}",
    ]
    report_printer("\n".join(lines))

    # Equivalence: every cell agrees on the winning dataflow and value.
    for key, naive_res in naive.items():
        fast_res = fast[key]
        objective = naive_res.objective
        assert fast_res.best.dataflow == naive_res.best.dataflow, key
        assert objective.score(
            fast_res.best.cost, fast_res.best.energy
        ) == pytest.approx(
            objective.score(naive_res.best.cost, naive_res.best.energy)
        ), key

    # The optimizations must actually fire...
    assert totals.pruned > 0
    assert totals.cache_hits > 0
    assert totals.evaluated < totals.enumerated
    # ...and buy at least the acceptance-criterion speedup.
    assert naive_s >= 2.0 * fast_s, (
        f"engine only {naive_s / fast_s:.2f}x faster"
    )
