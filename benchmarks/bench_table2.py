"""Benchmark: regenerate Table 2 (live footprint per granularity)."""

from repro.experiments import table2


def test_table2(benchmark, report_printer):
    rows = benchmark(table2.run)
    report_printer(table2.format_report(rows))

    by = {r.granularity: r for r in rows}
    # Closed forms must match the per-tensor breakdown exactly, and the
    # footprint must shrink monotonically M > B > H > R.
    assert all(r.consistent for r in rows)
    assert (
        by["M-Gran"].closed_form_elements
        > by["B-Gran"].closed_form_elements
        > by["H-Gran"].closed_form_elements
        > by["R-Gran"].closed_form_elements
    )
    benchmark.extra_info["r_gran_mb"] = round(
        by["R-Gran"].closed_form_elements * 2 / 1024 ** 2, 2
    )
