"""Benchmarks for the workload-breadth extension experiments."""

from repro.experiments import ext_decode, ext_sparse, ext_suite


def test_sparse_composition(benchmark, report_printer):
    rows = benchmark.pedantic(
        lambda: ext_sparse.run(seq=16384), rounds=1, iterations=1
    )
    report_printer(ext_sparse.format_report(rows))
    dense, window = rows[0], rows[1]
    # Orthogonality (paper section 7): FLAT's win survives sparsity and
    # the combined speedup is roughly multiplicative.
    assert window.flat_speedup > 1.2
    assert dense.base_cycles / window.flat_cycles > 5.0
    benchmark.extra_info["combined_speedup"] = round(
        dense.base_cycles / window.flat_cycles, 1
    )


def test_long_sequence_suite(benchmark, report_printer):
    rows = benchmark.pedantic(ext_suite.run, rounds=1, iterations=1)
    report_printer(ext_suite.format_report(rows))
    # Every intro application with a quadratic bottleneck inside the
    # staging envelope sees a multi-x FLAT speedup; none regress.
    for r in rows:
        assert r.flat_util >= r.base_util - 1e-9
    big = [r for r in rows if 8192 <= r.seq <= 131072]
    assert big and max(r.speedup for r in big) > 4.0


def test_decode_boundary(benchmark, report_printer):
    rows = benchmark.pedantic(ext_decode.run, rounds=1, iterations=1)
    report_printer(ext_decode.format_report(rows))
    # The negative result is stable: decode never benefits from FLAT.
    assert all(abs(r.speedup - 1.0) < 0.1 for r in rows)
    assert all(r.base_util < 0.05 for r in rows)
