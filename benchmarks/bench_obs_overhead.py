"""Benchmark: observability overhead on a fig8-scale search sweep.

Runs the same exhaustive-staging DSE sweep twice — tracing off, then
under ``obs.observed()`` with spans and counters live — taking the
best of N repetitions on each side so scheduler noise cancels.  The
acceptance criterion of the observability PR is asserted directly:

* the traced sweep is within 5% of the untraced wall-clock, and
* the traced run's reports (best dataflow + objective value per cell)
  are identical to the untraced run's — instrumentation never changes
  what the repo computes.
"""

import os
import time

import pytest

import repro.obs as obs
from repro.arch.presets import edge
from repro.core.dse import Objective, SearchSpace, search
from repro.core.engine import clear_evaluation_cache
from repro.models.configs import model_config
from repro.ops.attention import Scope

SCOPES = (Scope.LA, Scope.BLOCK)
OBJECTIVES = (Objective.RUNTIME, Objective.ENERGY, Objective.EDP)
ROUNDS = 3
OVERHEAD_BUDGET = 0.05


def _sweep(cfg, accel):
    space = SearchSpace(exhaustive_staging=True)
    cells = {}
    for scope in SCOPES:
        for objective in OBJECTIVES:
            cells[(scope, objective)] = search(
                cfg, accel, scope=scope, objective=objective, space=space,
                retain_points=False,
            )
    return cells


def _best_of(fn, rounds):
    """Best wall-clock of ``rounds`` cold runs (LRU cleared each time)."""
    best_s, result = float("inf"), None
    for _ in range(rounds):
        clear_evaluation_cache()
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best_s:
            best_s = elapsed
    return best_s, result


def test_obs_overhead_under_budget(benchmark, report_printer):
    # BENCH_OBS_SEQ shrinks the sweep for CI smoke runs; the default
    # is the fig8-style bandwidth-bound regime.
    cfg = model_config("bert", seq=int(os.environ.get("BENCH_OBS_SEQ",
                                                      "4096")))
    accel = edge()

    baseline_s, baseline = _best_of(lambda: _sweep(cfg, accel), ROUNDS)

    def traced_sweep():
        with obs.observed() as session:
            cells = _sweep(cfg, accel)
            traced_sweep.snapshot = session.registry.snapshot()
            traced_sweep.spans = len(session.collector.events)
        return cells

    traced_s, traced = benchmark.pedantic(
        lambda: _best_of(traced_sweep, ROUNDS), rounds=1, iterations=1,
    )

    overhead = traced_s / baseline_s - 1.0
    lines = [
        f"sweep: {len(traced)} searches, "
        f"{traced_sweep.spans} spans recorded",
        f"untraced best of {ROUNDS}: {baseline_s * 1e3:9.1f} ms",
        f"traced   best of {ROUNDS}: {traced_s * 1e3:9.1f} ms "
        f"({overhead * 100:+.2f}% overhead)",
        f"engine.evaluated: "
        f"{traced_sweep.snapshot['engine.evaluated']['value']}",
    ]
    report_printer("\n".join(lines))

    # Tracing never changes results...
    for key, base in baseline.items():
        assert traced[key].best.dataflow == base.best.dataflow, key
        objective = base.objective
        assert objective.score(
            traced[key].best.cost, traced[key].best.energy
        ) == pytest.approx(
            objective.score(base.best.cost, base.best.energy)
        ), key
    # ...the hooks actually fired...
    assert traced_sweep.spans > 0
    assert traced_sweep.snapshot["engine.searches"]["value"] == len(SCOPES) * len(OBJECTIVES)
    # ...and cost less than the acceptance budget.
    assert overhead < OVERHEAD_BUDGET, (
        f"observability overhead {overhead * 100:.2f}% exceeds "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget"
    )
