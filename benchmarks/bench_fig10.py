"""Benchmark: regenerate Figure 10 (the FLAT design space scatter)."""

from repro.experiments import fig10

KB = 1024


def test_fig10_design_space(benchmark, report_printer):
    points, result = benchmark.pedantic(
        lambda: fig10.run(exhaustive_staging=True), rounds=1, iterations=1
    )
    report_printer(fig10.format_report(points, result))

    # The full 2^5-staging space is enumerated.
    assert len(points) > 300
    front = [p for p in points if p.on_pareto_front]
    assert front
    # The paper's top-left corner: near-cap utilization at a footprint
    # orders of magnitude below the M-granularity point.
    small_and_fast = [
        p for p in front
        if p.utilization > 0.9 and p.footprint_bytes < 512 * KB
    ]
    assert small_and_fast
    assert any(p.granularity == "R" for p in small_and_fast)
    m_points = [p for p in points if p.granularity == "M" and
                p.footprint_bytes > 0]
    assert min(p.footprint_bytes for p in m_points) > \
        100 * min(p.footprint_bytes for p in small_and_fast)
    benchmark.extra_info["points"] = len(points)
    benchmark.extra_info["pareto"] = len(front)
